package core

import (
	"fmt"
	"sort"

	"hydra/internal/admm"
	"hydra/internal/linalg"
	"hydra/internal/parallel"
	"hydra/internal/platform"
	"hydra/internal/structure"
)

// This file contains extensions beyond the paper's Algorithm 1 that fall
// out of its own machinery:
//
//   - EigenLinker: the fully unsupervised agreement-cluster relaxation of
//     Section 6.2 used directly as a linker (no labels at all);
//   - LinearLinker: the primal linear model fitted by consensus ADMM over
//     data shards — the "distributed convex optimization [3] ... on several
//     servers in parallel" path of Section 6.3, for scales where the dense
//     dual would not fit;
//   - TuneThreshold: validation-style decision-threshold selection (the
//     paper tunes all parameters on a validation set).

// EigenLinker links accounts with no supervision: it builds the structure
// consistency matrix M over the candidates of each block and scores each
// candidate by its weight in the principal eigenvector (the relaxed
// agreement-cluster indicator). Scores are shifted by Threshold so that
// the Linker convention (positive = link) holds.
type EigenLinker struct {
	// Cfg supplies the σ₁/σ₂/MaxHops bandwidths (GammaL etc. are unused).
	Cfg Config
	// Threshold is the cluster-score cut (default 0.3).
	Threshold float64

	scores map[pairKey]float64
}

// Name implements Linker.
func (e *EigenLinker) Name() string { return "HYDRA-U(eigen)" }

// Fit implements Linker. Labels in the task are ignored entirely.
func (e *EigenLinker) Fit(sys *System, task *Task) error {
	if e.Threshold <= 0 {
		e.Threshold = 0.3
	}
	e.scores = make(map[pairKey]float64)
	for _, b := range task.Blocks {
		embA, err := sys.Embeddings(b.PA)
		if err != nil {
			return err
		}
		embB, err := sys.Embeddings(b.PB)
		if err != nil {
			return err
		}
		platA, err := sys.DS.Platform(b.PA)
		if err != nil {
			return err
		}
		platB, err := sys.DS.Platform(b.PB)
		if err != nil {
			return err
		}
		scands := make([]structure.Candidate, len(b.Cands))
		for i, c := range b.Cands {
			scands[i] = structure.Candidate{A: c.A, B: c.B}
		}
		m, err := structure.Build(scands, embA, embB, platA.Graph, platB.Graph, structure.Config{
			Sigma1: e.Cfg.Sigma1, Sigma2: e.Cfg.Sigma2, MaxHops: e.Cfg.MaxHops,
		})
		if err != nil {
			return err
		}
		cluster, err := structure.AgreementCluster(m, e.Cfg.Seed)
		if err != nil {
			return err
		}
		for i, c := range b.Cands {
			e.scores[pairKey{b.PA, b.PB, c.A, c.B}] = cluster[i] - e.Threshold
		}
	}
	return nil
}

// PairScore implements Linker. Pairs outside the fitted candidate set score
// at the negative threshold (unknown pairs are not linked).
func (e *EigenLinker) PairScore(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	if e.scores == nil {
		return 0, fmt.Errorf("core: EigenLinker not fitted")
	}
	if s, ok := e.scores[pairKey{pa, pb, a, b}]; ok {
		return s, nil
	}
	return -e.Threshold, nil
}

// LinearModel is a primal linear linkage function w·x + b over imputed
// feature vectors.
type LinearModel struct {
	W    linalg.Vector
	B    float64
	Diag admm.Result
}

// LinearLinker fits the linear model with consensus ADMM across Shards
// simulated servers: each shard holds a slice of the labeled pairs and
// solves its regularized least-squares subproblem concurrently; the
// consensus variable is the shared w.
type LinearLinker struct {
	// Shards is the simulated server count (paper: 5).
	Shards int
	// Lambda is the l2 regularization.
	Lambda float64
	// Variant controls imputation, as in Config.
	Variant    Variant
	TopFriends int
	// Workers pins the parallelism of the labeled-pair imputation and the
	// per-shard ADMM solves (≤ 0 = all cores; results are identical at any
	// worker count, as everywhere else).
	Workers int

	model *LinearModel
	sys   *System
}

// Name implements Linker.
func (l *LinearLinker) Name() string { return fmt.Sprintf("HYDRA-lin(admm×%d)", l.shards()) }

func (l *LinearLinker) shards() int {
	if l.Shards <= 0 {
		return 5
	}
	return l.Shards
}

// Fit implements Linker: least-squares fit of labels ±1 on the labeled
// candidates, distributed over the shards.
func (l *LinearLinker) Fit(sys *System, task *Task) error {
	l.sys = sys
	lambda := l.Lambda
	if lambda <= 0 {
		lambda = 1
	}
	// Collect the labeled candidates in task order, then impute their
	// feature vectors in parallel (each job writes its own index slot).
	type labeledJob struct {
		b  *Block
		ci int
	}
	var jobs []labeledJob
	for _, b := range task.Blocks {
		for _, ci := range b.SortedLabelIndices() {
			jobs = append(jobs, labeledJob{b: b, ci: ci})
		}
	}
	if len(jobs) == 0 {
		return fmt.Errorf("core: LinearLinker has no labeled pairs")
	}
	xs, err := parallel.MapErr(l.Workers, len(jobs), func(i int) (linalg.Vector, error) {
		j := jobs[i]
		c := j.b.Cands[j.ci]
		x, err := sys.Impute(j.b.PA, c.A, j.b.PB, c.B, l.Variant, l.TopFriends)
		if err != nil {
			return nil, err
		}
		// Homogeneous coordinate for the bias term.
		return append(x.Clone(), 1), nil
	})
	if err != nil {
		return err
	}
	ys := make([]float64, len(jobs))
	for i, j := range jobs {
		ys[i] = j.b.Labels[j.ci]
	}
	dim := len(xs[0])
	shards, err := admm.Split(xs, ys, l.shards())
	if err != nil {
		return err
	}
	res, err := admm.Solve(shards, dim, admm.Opts{Lambda: lambda, Rho: 2, MaxIter: 300, Tol: 1e-7, Workers: l.Workers})
	if err != nil {
		return err
	}
	l.model = &LinearModel{W: res.W[:dim-1], B: res.W[dim-1], Diag: *res}
	return nil
}

// PairScore implements Linker.
func (l *LinearLinker) PairScore(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	if l.model == nil {
		return 0, fmt.Errorf("core: LinearLinker not fitted")
	}
	x, err := l.sys.Impute(pa, a, pb, b, l.Variant, l.TopFriends)
	if err != nil {
		return 0, err
	}
	return l.model.W.Dot(x) + l.model.B, nil
}

// Model exposes the fitted linear model (nil before Fit).
func (l *LinearLinker) Model() *LinearModel { return l.model }

// TuneThreshold scans decision thresholds over the labeled candidates of
// the task and returns the one maximizing F1 — the validation-set tuning
// step of the paper's Section 7.1. The returned threshold should be
// subtracted from raw scores (link when score > threshold).
func TuneThreshold(sys *System, l Linker, task *Task) (float64, error) {
	type scored struct {
		s float64
		y bool
	}
	var data []scored
	for _, b := range task.Blocks {
		for _, ci := range b.SortedLabelIndices() {
			c := b.Cands[ci]
			s, err := l.PairScore(b.PA, c.A, b.PB, c.B)
			if err != nil {
				return 0, err
			}
			data = append(data, scored{s: s, y: b.Labels[ci] > 0})
		}
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("core: TuneThreshold needs labeled pairs")
	}
	sort.Slice(data, func(i, j int) bool { return data[i].s > data[j].s })
	totalPos := 0
	for _, d := range data {
		if d.y {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0, fmt.Errorf("core: TuneThreshold needs positive labels")
	}
	bestF1, bestThr := -1.0, 0.0
	tp, fp := 0, 0
	for i, d := range data {
		if d.y {
			tp++
		} else {
			fp++
		}
		if i+1 < len(data) && data[i+1].s == d.s {
			continue
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(totalPos)
		if prec+rec == 0 {
			continue
		}
		f1 := 2 * prec * rec / (prec + rec)
		if f1 > bestF1 {
			bestF1 = f1
			// Place the threshold midway to the next score.
			if i+1 < len(data) {
				bestThr = (d.s + data[i+1].s) / 2
			} else {
				bestThr = d.s - 1e-9
			}
		}
	}
	return bestThr, nil
}
