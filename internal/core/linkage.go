package core

import (
	"fmt"
	"math/rand"
	"sort"

	"hydra/internal/blocking"
	"hydra/internal/metrics"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// LabelOpts controls how training labels are attached to candidate pairs,
// mirroring the paper's three-way split: ground-truth linked pairs (from
// the cross-login data provider), rule-based pre-matched pairs, and the
// unlabeled rest.
type LabelOpts struct {
	// LabelFraction is the share of true candidate pairs that receive
	// ground-truth positive labels (the paper sweeps this axis in Fig 9).
	LabelFraction float64
	// NegPerPos negatives are sampled per positive label (ground truth
	// guarantees they are truly negative). The paper's labeled-to-unlabeled
	// ratio of 1:5 emerges from this and the candidate pool size.
	NegPerPos int
	// UsePreMatched adds rule-based pre-matched pairs as (noisy) positive
	// labels.
	UsePreMatched bool
	Seed          int64
}

// DefaultLabelOpts matches the paper's main setting.
func DefaultLabelOpts(seed int64) LabelOpts {
	return LabelOpts{LabelFraction: 0.5, NegPerPos: 2, UsePreMatched: true, Seed: seed}
}

// BuildBlock generates the candidate pairs for a platform pair and attaches
// labels per opts.
func BuildBlock(sys *System, pa, pb platform.ID, rules blocking.Rules, opts LabelOpts) (*Block, error) {
	platA, err := sys.DS.Platform(pa)
	if err != nil {
		return nil, err
	}
	platB, err := sys.DS.Platform(pb)
	if err != nil {
		return nil, err
	}
	cands, err := blocking.Generate(platA, platB, sys.Faces(), rules)
	if err != nil {
		return nil, err
	}
	block := &Block{PA: pa, PB: pb, Cands: cands, Labels: make(map[int]float64)}

	rng := rand.New(rand.NewSource(opts.Seed*7919 + int64(len(cands))))
	// Ground-truth positives: a LabelFraction sample of the true pairs
	// among candidates.
	var trueIdx, falseIdx []int
	for i, c := range cands {
		if sys.DS.SamePerson(pa, c.A, pb, c.B) {
			trueIdx = append(trueIdx, i)
		} else {
			falseIdx = append(falseIdx, i)
		}
	}
	rng.Shuffle(len(trueIdx), func(i, j int) { trueIdx[i], trueIdx[j] = trueIdx[j], trueIdx[i] })
	nPos := int(opts.LabelFraction * float64(len(trueIdx)))
	for _, i := range trueIdx[:nPos] {
		block.Labels[i] = 1
	}
	// Pre-matched pairs join the positive labeled set (noisy labels).
	if opts.UsePreMatched {
		for i, c := range cands {
			if c.PreMatched {
				block.Labels[i] = 1
			}
		}
	}
	// Negative labels: ground-truth-verified non-pairs.
	nNeg := opts.NegPerPos * countPositives(block.Labels)
	rng.Shuffle(len(falseIdx), func(i, j int) { falseIdx[i], falseIdx[j] = falseIdx[j], falseIdx[i] })
	added := 0
	for _, i := range falseIdx {
		if added >= nNeg {
			break
		}
		if _, taken := block.Labels[i]; taken {
			continue
		}
		block.Labels[i] = -1
		added++
	}
	return block, nil
}

func countPositives(labels map[int]float64) int {
	n := 0
	for _, y := range labels {
		if y > 0 {
			n++
		}
	}
	return n
}

// Linker is the common interface of HYDRA and the baselines: anything that
// can be fit on a Task and then score account pairs.
type Linker interface {
	// Name identifies the method in experiment output.
	Name() string
	// Fit trains on the task.
	Fit(sys *System, task *Task) error
	// PairScore returns a real-valued linkage score (higher = more likely
	// the same person); the decision threshold is 0. Implementations must
	// be safe for concurrent calls after Fit — EvaluateLinker scores
	// candidates in parallel. (All in-repo linkers are read-only after
	// Fit apart from the mutex-guarded System caches.)
	PairScore(pa platform.ID, a int, pb platform.ID, b int) (float64, error)
}

// HydraLinker adapts Train/Model to the Linker interface.
type HydraLinker struct {
	Cfg   Config
	model *Model
}

// Name implements Linker.
func (h *HydraLinker) Name() string { return h.Cfg.Variant.String() }

// Fit implements Linker.
func (h *HydraLinker) Fit(sys *System, task *Task) error {
	m, err := Train(sys, task, h.Cfg)
	if err != nil {
		return err
	}
	h.model = m
	return nil
}

// PairScore implements Linker.
func (h *HydraLinker) PairScore(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	if h.model == nil {
		return 0, fmt.Errorf("core: HydraLinker not fitted")
	}
	return h.model.Score(pa, a, pb, b)
}

// Model exposes the trained model (nil before Fit).
func (h *HydraLinker) Model() *Model { return h.model }

// EvaluateLinker scores every candidate of every block with the linker and
// compares decisions (score > 0) against ground truth. Blocking misses —
// true pairs that never became candidates — are charged as false negatives,
// implementing the paper's recall definition. Scoring runs on all cores;
// use EvaluateLinkerWorkers to pin the parallelism.
func EvaluateLinker(sys *System, l Linker, blocks []*Block) (metrics.Confusion, error) {
	return EvaluateLinkerWorkers(sys, l, blocks, 0)
}

// EvaluateLinkerWorkers is EvaluateLinker with a pinned worker count
// (≤ 0 = all cores). Each candidate's decision is written to its own
// index, so the confusion counts are identical at any worker count.
func EvaluateLinkerWorkers(sys *System, l Linker, blocks []*Block, workers int) (metrics.Confusion, error) {
	var total metrics.Confusion
	for _, b := range blocks {
		returned := make([]bool, len(b.Cands))
		truth := make([]bool, len(b.Cands))
		if err := parallel.ForErr(workers, len(b.Cands), func(i int) error {
			c := b.Cands[i]
			s, err := l.PairScore(b.PA, c.A, b.PB, c.B)
			if err != nil {
				return err
			}
			returned[i] = s > 0
			truth[i] = sys.DS.SamePerson(b.PA, c.A, b.PB, c.B)
			return nil
		}); err != nil {
			return metrics.Confusion{}, err
		}
		missed := missedPositives(sys.DS, b)
		c, err := metrics.EvaluateLinkage(returned, truth, missed)
		if err != nil {
			return metrics.Confusion{}, err
		}
		total.TP += c.TP
		total.FP += c.FP
		total.FN += c.FN
		total.TN += c.TN
	}
	return total, nil
}

// missedPositives counts true pairs absent from the candidate list.
func missedPositives(ds *platform.Dataset, b *Block) int {
	inCands := make(map[int]bool)
	for _, c := range b.Cands {
		if ds.SamePerson(b.PA, c.A, b.PB, c.B) {
			person := ds.Platforms[b.PA].Account(c.A).Person
			inCands[person] = true
		}
	}
	total := 0
	for person := range ds.PersonAccounts {
		_, okA := ds.AccountOf(person, b.PA)
		_, okB := ds.AccountOf(person, b.PB)
		if okA && okB && !inCands[person] {
			total++
		}
	}
	return total
}

// TaskStats summarizes a task for experiment logs.
type TaskStats struct {
	Blocks     int
	Candidates int
	Labeled    int
	Positives  int
}

// Stats computes TaskStats.
func (t *Task) Stats() TaskStats {
	st := TaskStats{Blocks: len(t.Blocks), Candidates: t.NumCandidates(), Labeled: t.NumLabeled()}
	for _, b := range t.Blocks {
		st.Positives += countPositives(b.Labels)
	}
	return st
}

// SortedLabelIndices returns the labeled candidate indices of a block in
// ascending order (deterministic iteration for tests and diagnostics).
func (b *Block) SortedLabelIndices() []int {
	idx := make([]int, 0, len(b.Labels))
	for i := range b.Labels {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}
