package core

import (
	"testing"

	"hydra/internal/platform"
)

// referenceScore is the pre-fast-path scalar serving path, kept verbatim
// as the bit-exactness oracle: impute through the Source, then walk the
// FULL candidate expansion skipping α=0 entries per call — exactly what
// Model.Score did before support compaction and batching.
func referenceScore(t *testing.T, m *Model, pa platform.ID, a int, pb platform.ID, b int) float64 {
	t.Helper()
	x, err := m.src.Impute(pa, a, pb, b, m.cfg.Variant, m.cfg.TopFriends)
	if err != nil {
		t.Fatal(err)
	}
	s := m.bias
	for j, xj := range m.xs {
		if m.alpha[j] == 0 {
			continue
		}
		s += m.alpha[j] * m.kern.Eval(xj, x)
	}
	return s
}

// TestFastPathWorkersBitExact locks the serving fast path to the scalar
// reference on the full candidate surface: Score, ScoreBatchWorkers and
// ScoreBatchInto must reproduce the pre-compaction per-pair loop bit for
// bit at one and at four workers.
func TestFastPathWorkersBitExact(t *testing.T) {
	const seed = 21
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, seed)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(seed))
	m, err := Train(sys, task, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	blk := task.Blocks[0]
	pairs := make([][2]int, len(blk.Cands))
	want := make([]float64, len(blk.Cands))
	for i, c := range blk.Cands {
		pairs[i] = [2]int{c.A, c.B}
		want[i] = referenceScore(t, m, blk.PA, c.A, blk.PB, c.B)
	}
	for i, c := range blk.Cands {
		got, err := m.Score(blk.PA, c.A, blk.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("Score(%d,%d) = %v, reference scalar path %v", c.A, c.B, got, want[i])
		}
	}
	for _, workers := range []int{1, 4} {
		got, err := m.ScoreBatchWorkers(blk.PA, blk.PB, pairs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: batch score %d = %v, reference %v", workers, i, got[i], want[i])
			}
		}
		// Run the Into form twice on the same model to exercise the
		// recycled scratch, not just fresh buffers.
		out := make([]float64, len(pairs))
		for rep := 0; rep < 2; rep++ {
			if err := m.ScoreBatchInto(blk.PA, blk.PB, pairs, workers, out); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("workers=%d rep=%d: ScoreBatchInto %d = %v, reference %v", workers, rep, i, out[i], want[i])
				}
			}
		}
	}
	if m.NumSupport() > len(pairs) {
		t.Fatalf("support set %d larger than candidate set %d", m.NumSupport(), len(pairs))
	}
}

// TestCompactionZeroedDualsBitExact zeroes a spread of dual coefficients
// in a trained model's parts, restores it (which compacts the support
// set once), and asserts the compacted model scores bit-identically to
// the reference loop that re-skips the zeros on every call.
func TestCompactionZeroedDualsBitExact(t *testing.T) {
	const seed = 22
	_, sys := buildSystem(t, 24, platform.EnglishPlatforms, seed)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(seed))
	m, err := Train(sys, task, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := m.Parts()
	if err != nil {
		t.Fatal(err)
	}
	// Zero every third dual (first and last included) without touching
	// the trained model's slice.
	alpha := parts.Alpha.Clone()
	zeroed := 0
	for j := range alpha {
		if j%3 == 0 || j == len(alpha)-1 {
			if alpha[j] != 0 {
				zeroed++
			}
			alpha[j] = 0
		}
	}
	if zeroed == 0 {
		t.Fatal("fixture zeroed no duals; pick a different seed")
	}
	parts.Alpha = alpha
	restored, err := ModelFromParts(sys, parts)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, a := range alpha {
		if a != 0 {
			nonzero++
		}
	}
	if restored.NumSupport() != nonzero {
		t.Fatalf("compacted support = %d, want %d non-zero duals", restored.NumSupport(), nonzero)
	}
	for _, c := range task.Blocks[0].Cands {
		want := referenceScore(t, restored, task.Blocks[0].PA, c.A, task.Blocks[0].PB, c.B)
		got, err := restored.Score(task.Blocks[0].PA, c.A, task.Blocks[0].PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("compacted score (%d,%d) = %v, reference %v", c.A, c.B, got, want)
		}
	}
}
