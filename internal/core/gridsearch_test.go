package core

import (
	"testing"

	"hydra/internal/platform"
)

func TestGridSearch(t *testing.T) {
	_, sys := buildSystem(t, 50, platform.EnglishPlatforms, 27)
	trainTask := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: false, Seed: 27})
	valTask := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: false, Seed: 28})

	res, err := GridSearch(sys, trainTask, valTask, DefaultConfig(27),
		[]float64{1e-4, 1e-3}, []float64{0, 30}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	if res.BestF1 <= 0.3 {
		t.Fatalf("best F1 = %v", res.BestF1)
	}
	// The best config must be one of the grid points.
	found := false
	for _, p := range res.Points {
		if p.GammaL == res.Best.GammaL && p.GammaM == res.Best.GammaM && p.P == res.Best.P {
			found = true
			if p.F1 != res.BestF1 {
				t.Fatal("best F1 does not match its grid point")
			}
		}
	}
	if !found {
		t.Fatal("best config not on the grid")
	}
}

func TestGridSearchValidation(t *testing.T) {
	if _, err := GridSearch(nil, nil, nil, Config{}, nil, []float64{1}, []float64{1}); err == nil {
		t.Fatal("expected empty-grid error")
	}
}

func TestGridSearchRecordsFailures(t *testing.T) {
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, 29)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(29))
	// GammaL = -1 is invalid: that grid point must fail but the sweep must
	// still succeed through the valid point.
	res, err := GridSearch(sys, task, task, DefaultConfig(29),
		[]float64{-1, 1e-3}, []float64{10}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, p := range res.Points {
		if p.Err != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
}

func TestGridSearchAllFail(t *testing.T) {
	_, sys := buildSystem(t, 20, platform.EnglishPlatforms, 30)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(30))
	if _, err := GridSearch(sys, task, task, DefaultConfig(30),
		[]float64{-1}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("expected all-failed error")
	}
}
