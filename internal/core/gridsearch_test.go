package core

import (
	"testing"

	"hydra/internal/platform"
)

func TestGridSearch(t *testing.T) {
	_, sys := buildSystem(t, 50, platform.EnglishPlatforms, 27)
	trainTask := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: false, Seed: 27})
	valTask := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: false, Seed: 28})

	res, err := GridSearch(sys, trainTask, valTask, DefaultConfig(27),
		[]float64{1e-4, 1e-3}, []float64{0, 30}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	if res.BestF1 <= 0.3 {
		t.Fatalf("best F1 = %v", res.BestF1)
	}
	// The best config must be one of the grid points.
	found := false
	for _, p := range res.Points {
		if p.GammaL == res.Best.GammaL && p.GammaM == res.Best.GammaM && p.P == res.Best.P {
			found = true
			if p.F1 != res.BestF1 {
				t.Fatal("best F1 does not match its grid point")
			}
		}
	}
	if !found {
		t.Fatal("best config not on the grid")
	}
}

func TestGridSearchValidation(t *testing.T) {
	if _, err := GridSearch(nil, nil, nil, Config{}, nil, []float64{1}, []float64{1}); err == nil {
		t.Fatal("expected empty-grid error")
	}
}

func TestGridSearchRecordsFailures(t *testing.T) {
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, 29)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(29))
	// GammaL = -1 is invalid: that grid point must fail but the sweep must
	// still succeed through the valid point.
	res, err := GridSearch(sys, task, task, DefaultConfig(29),
		[]float64{-1, 1e-3}, []float64{10}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, p := range res.Points {
		if p.Err != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
}

func TestGridSearchAllFail(t *testing.T) {
	_, sys := buildSystem(t, 20, platform.EnglishPlatforms, 30)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(30))
	if _, err := GridSearch(sys, task, task, DefaultConfig(30),
		[]float64{-1}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("expected all-failed error")
	}
}

// TestGridSearchWorkersDeterminism: the fanned-out sweep must reproduce
// the sequential sweep exactly — same points, same F1s, same Best — since
// every training path is bit-deterministic at any worker count.
func TestGridSearchWorkersDeterminism(t *testing.T) {
	const seed = 31
	run := func(workers int) *GridResult {
		t.Helper()
		_, sys := buildSystem(t, 40, platform.EnglishPlatforms, seed)
		trainTask := buildTask(t, sys, platform.Twitter, platform.Facebook,
			LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: false, Seed: seed})
		valTask := buildTask(t, sys, platform.Twitter, platform.Facebook,
			LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: false, Seed: seed + 1})
		base := DefaultConfig(seed)
		base.Workers = workers
		res, err := GridSearch(sys, trainTask, valTask, base,
			[]float64{1e-4, 1e-3}, []float64{30}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, rN := run(1), run(4)
	if len(r1.Points) != len(rN.Points) {
		t.Fatalf("point count %d vs %d", len(r1.Points), len(rN.Points))
	}
	for i := range r1.Points {
		p1, pN := r1.Points[i], rN.Points[i]
		if p1.GammaL != pN.GammaL || p1.GammaM != pN.GammaM || p1.P != pN.P {
			t.Fatalf("point %d order differs: %+v vs %+v", i, p1, pN)
		}
		if p1.F1 != pN.F1 || (p1.Err == nil) != (pN.Err == nil) {
			t.Fatalf("point %d outcome differs: %+v vs %+v", i, p1, pN)
		}
	}
	if r1.BestF1 != rN.BestF1 ||
		r1.Best.GammaL != rN.Best.GammaL || r1.Best.GammaM != rN.Best.GammaM || r1.Best.P != rN.Best.P {
		t.Fatalf("best differs: %+v (%v) vs %+v (%v)", r1.Best, r1.BestF1, rN.Best, rN.BestF1)
	}
}
