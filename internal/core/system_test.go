package core

import (
	"testing"

	"hydra/internal/platform"
)

func TestRawPairCaching(t *testing.T) {
	_, sys := buildSystem(t, 20, platform.EnglishPlatforms, 51)
	if sys.CacheSize() != 0 {
		t.Fatal("cache should start empty")
	}
	pv1, err := sys.RawPair(platform.Twitter, 0, platform.Facebook, 1)
	if err != nil {
		t.Fatal(err)
	}
	n1 := sys.CacheSize()
	pv2, err := sys.RawPair(platform.Twitter, 0, platform.Facebook, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.CacheSize() != n1 {
		t.Fatal("repeat access should not grow the cache")
	}
	// Cached vectors are identical objects.
	for d := range pv1.X {
		if pv1.X[d] != pv2.X[d] || pv1.Mask[d] != pv2.Mask[d] {
			t.Fatal("cache returned different data")
		}
	}
}

func TestRawPairOutOfRange(t *testing.T) {
	_, sys := buildSystem(t, 10, platform.EnglishPlatforms, 52)
	if _, err := sys.RawPair(platform.Twitter, 999, platform.Facebook, 0); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := sys.RawPair("bogus", 0, platform.Facebook, 0); err == nil {
		t.Fatal("expected unknown-platform error")
	}
}

func TestViewsLazyAndStable(t *testing.T) {
	_, sys := buildSystem(t, 15, platform.EnglishPlatforms, 53)
	v1, err := sys.Views(platform.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := sys.Views(platform.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	if &v1[0] != &v2[0] {
		t.Fatal("views rebuilt instead of cached")
	}
	if _, err := sys.Views("bogus"); err == nil {
		t.Fatal("expected unknown-platform error")
	}
}

func TestEmbeddingsMatchViews(t *testing.T) {
	_, sys := buildSystem(t, 15, platform.EnglishPlatforms, 54)
	views, _ := sys.Views(platform.Twitter)
	embs, err := sys.Embeddings(platform.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != len(views) {
		t.Fatal("length mismatch")
	}
	for i := range embs {
		if &embs[i][0] != &views[i].Embedding[0] {
			t.Fatal("embeddings should alias view embeddings")
		}
	}
	if _, err := sys.Embeddings("bogus"); err == nil {
		t.Fatal("expected unknown-platform error")
	}
}

func TestImputeNoFriendsFallsBack(t *testing.T) {
	w, sys := buildSystem(t, 20, platform.EnglishPlatforms, 55)
	// Find an isolated account (or accept none exist for this seed).
	tw, _ := w.Dataset.Platform(platform.Twitter)
	for a := 0; a < tw.NumAccounts(); a++ {
		if tw.Graph.Degree(a) > 0 {
			continue
		}
		x, err := sys.Impute(platform.Twitter, a, platform.Facebook, 0, HydraM, 3)
		if err != nil {
			t.Fatal(err)
		}
		pv, _ := sys.RawPair(platform.Twitter, a, platform.Facebook, 0)
		for d, m := range pv.Mask {
			if !m && x[d] != 0 {
				t.Fatal("isolated account should fall back to zero fill")
			}
		}
		return
	}
	t.Skip("no isolated accounts at this seed")
}

func TestImputeBadTopFriendsDefaulted(t *testing.T) {
	_, sys := buildSystem(t, 15, platform.EnglishPlatforms, 56)
	// topFriends <= 0 must default to 3, not panic.
	if _, err := sys.Impute(platform.Twitter, 0, platform.Facebook, 0, HydraM, 0); err != nil {
		t.Fatal(err)
	}
}

func TestModelScoreOutOfRange(t *testing.T) {
	_, sys := buildSystem(t, 25, platform.EnglishPlatforms, 57)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(57))
	m, err := Train(sys, task, DefaultConfig(57))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Score(platform.Twitter, 999, platform.Facebook, 0); err == nil {
		t.Fatal("expected out-of-range score error")
	}
	// Link wraps Score.
	if _, err := m.Link(platform.Twitter, 999, platform.Facebook, 0); err == nil {
		t.Fatal("expected out-of-range link error")
	}
	ok, err := m.Link(platform.Twitter, 0, platform.Facebook, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = ok
}

func TestHydraLinkerUnfitted(t *testing.T) {
	l := &HydraLinker{Cfg: DefaultConfig(1)}
	if _, err := l.PairScore(platform.Twitter, 0, platform.Facebook, 0); err == nil {
		t.Fatal("expected unfitted error")
	}
	if l.Model() != nil {
		t.Fatal("unfitted model should be nil")
	}
	if l.Name() != "HYDRA-M" {
		t.Fatalf("name = %s", l.Name())
	}
	z := &HydraLinker{Cfg: Config{Variant: HydraZ}}
	if z.Name() != "HYDRA-Z" {
		t.Fatalf("name = %s", z.Name())
	}
}

func TestBlockSortedLabelIndices(t *testing.T) {
	b := &Block{Labels: map[int]float64{5: 1, 1: -1, 3: 1}}
	idx := b.SortedLabelIndices()
	if len(idx) != 3 || idx[0] != 1 || idx[1] != 3 || idx[2] != 5 {
		t.Fatalf("sorted indices = %v", idx)
	}
}
