package core

// The serving fast path. A freshly trained or restored Model prepares
// itself for queries once (prepareServing): the kernel expansion of Eqn
// 12 is compacted to its support set — candidates with α ≠ 0 — and the
// support vectors are packed into one dense row-major matrix, so the hot
// loop walks contiguous memory instead of chasing per-candidate slices.
//
// Queries then run through ScoreBatchInto: the whole batch is imputed
// into reusable per-row feature buffers (with the A-side friend
// resolution memoized across rows sharing an account — a top-k query's
// shard shares one), all kernel values are evaluated into a pooled
// matrix by the blocked kernel.CrossGramInto workers, and α and the bias
// are folded per column. Every op runs in the exact order the scalar
// Decision loop used, so scores are bit-identical to the per-pair path
// at any worker count. All scratch (feature rows, the kernel matrix, the
// Eqn-18 accumulator, the friend memo) recycles through a sync.Pool, so
// a warm single-worker Score/ScoreBatchInto allocates nothing.

import (
	"fmt"
	"sync"

	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// prepareServing readies a model for queries: it compacts the support
// set, packs the support vectors, pins the pass-through resolver and
// adopts the source's pack-time impute table when it carries one.
// Called once from train and ModelFromParts; Parts() still serializes
// the full candidate set, so compaction never changes the wire format.
func (m *Model) prepareServing() {
	m.direct = sourceResolver{m.src}
	if c, ok := m.src.(imputeTableCarrier); ok {
		m.tbl = c.ImputeTable()
	}
	m.compactSupport()
}

// imputeTableCarrier is the optional Source upgrade prepareServing
// probes for: a snapshot Store restored from a bundle with a pack-time
// Eqn-18 table implements it; the training System does not.
type imputeTableCarrier interface {
	ImputeTable() *ImputeTable
}

// servingTable returns the impute table scoring should consult — nil
// when none is attached or the escape hatch turned it off.
func (m *Model) servingTable() *ImputeTable {
	if m.tbl == nil || m.tblOff.Load() {
		return nil
	}
	return m.tbl
}

// SetImputeTableEnabled toggles the pack-time impute table (the
// `-impute-table=off` escape hatch). Output is bit-identical either
// way; only the work per missing-dimension candidate changes.
func (m *Model) SetImputeTableEnabled(on bool) { m.tblOff.Store(!on) }

// HasImputeTable reports whether a pack-time impute table is attached
// (regardless of the enabled toggle).
func (m *Model) HasImputeTable() bool { return m.tbl != nil }

// ImputeTableEnabled reports whether a table is attached AND the
// runtime toggle leaves it on (the state /healthz publishes).
func (m *Model) ImputeTableEnabled() bool { return m.servingTable() != nil }

// ImputeTable returns the attached table (nil without one).
func (m *Model) ImputeTable() *ImputeTable { return m.tbl }

// compactSupport drops α=0 candidates once — the scalar Decision loop
// re-checked every candidate on every call — and packs the survivors
// into a dense row-major matrix in ascending candidate order. Keeping
// the order keeps the float addition sequence of Decision identical, so
// compaction is bit-exact by construction.
func (m *Model) compactSupport() {
	dim := 0
	if len(m.xs) > 0 {
		dim = len(m.xs[0])
	}
	nsv := 0
	for _, a := range m.alpha {
		if a != 0 {
			nsv++
		}
	}
	m.svMat = linalg.NewMatrix(nsv, dim)
	m.svAlpha = make([]float64, 0, nsv)
	m.svXs = make([]linalg.Vector, 0, nsv)
	r := 0
	for j, a := range m.alpha {
		if a == 0 {
			continue
		}
		copy(m.svMat.Data[r*dim:(r+1)*dim], m.xs[j])
		m.svXs = append(m.svXs, m.svMat.Row(r))
		m.svAlpha = append(m.svAlpha, a)
		r++
	}
}

// NumSupport reports the compacted support-set size (candidates with
// non-zero dual coefficient) — the per-query kernel evaluation count.
func (m *Model) NumSupport() int { return len(m.svAlpha) }

// friendMemo caches A-side friend resolutions across the rows of one
// batch: a top-k query's shard shares a single A account, so the
// (potentially live-graph) top-friends ranking is computed once per
// query instead of once per candidate. Resolution is pure and
// deterministic, so memoization never changes a result; entries are
// only valid for one (batch, topFriends) pair and the memo is reset per
// query. B-side lookups pass straight through.
type friendMemo struct {
	src Source
	pa  platform.ID
	mu  sync.Mutex
	m   map[int][]graph.Friend
}

func (fm *friendMemo) reset(src Source, pa platform.ID) *friendMemo {
	fm.src, fm.pa = src, pa
	if fm.m == nil {
		fm.m = make(map[int][]graph.Friend, 4)
	} else {
		clear(fm.m)
	}
	return fm
}

func (fm *friendMemo) resolveFriends(id platform.ID, local, k int) ([]graph.Friend, error) {
	if id != fm.pa {
		return fm.src.Friends(id, local, k)
	}
	fm.mu.Lock()
	if fr, ok := fm.m[local]; ok {
		fm.mu.Unlock()
		return fr, nil
	}
	fm.mu.Unlock()
	// Resolve outside the lock — it can be an O(degree log degree) graph
	// ranking; racing resolutions compute identical slices and the first
	// stored one wins.
	fr, err := fm.src.Friends(id, local, k)
	if err != nil {
		return nil, err
	}
	fm.mu.Lock()
	if prev, ok := fm.m[local]; ok {
		fr = prev
	} else {
		fm.m[local] = fr
	}
	fm.mu.Unlock()
	return fr, nil
}

// rawPairMemo caches friend-pair raw vectors across the rows of one
// batch. A top-k query's candidates share the A side — so they share
// its top friends — and neighboring B candidates overlap in theirs, so
// the same (fa, fb) raw pair is requested many times per query. The
// memo resolves each once through the Source (and its global, mutexed
// pairCache) and answers the rest locally, cutting the hot path's
// global-cache traffic to one lookup per distinct friend pair. Raw pair
// vectors are pure memos of a deterministic computation, so memoization
// never changes a result; the map is reset per batch but keeps its
// capacity, preserving the warm path's zero-allocation steady state.
type rawPairMemo struct {
	src Source
	mu  sync.Mutex
	m   map[pairKey]features.PairVector
}

func (rm *rawPairMemo) reset(src Source) {
	rm.src = src
	if rm.m == nil {
		rm.m = make(map[pairKey]features.PairVector, 16)
	} else {
		clear(rm.m)
	}
}

func (rm *rawPairMemo) resolveRawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error) {
	key := pairKey{pa, pb, a, b}
	rm.mu.Lock()
	if pv, ok := rm.m[key]; ok {
		rm.mu.Unlock()
		return pv, nil
	}
	rm.mu.Unlock()
	// Resolve outside the lock (the Source may compute the pair); racing
	// resolutions compute identical vectors and the first stored wins.
	pv, err := rm.src.RawPair(pa, a, pb, b)
	if err != nil {
		return features.PairVector{}, err
	}
	rm.mu.Lock()
	if prev, ok := rm.m[key]; ok {
		pv = prev
	} else {
		rm.m[key] = pv
	}
	rm.mu.Unlock()
	return pv, nil
}

// batchMemo bundles the two per-batch memos into the imputeResolver one
// imputation pass shares across its workers.
type batchMemo struct {
	friendMemo
	rawPairMemo
}

func (bm *batchMemo) reset(src Source, pa platform.ID) *batchMemo {
	bm.friendMemo.reset(src, pa)
	bm.rawPairMemo.reset(src)
	return bm
}

// scoreScratch is the per-query reusable state of the serving fast path.
// Instances recycle through Model.scratch; every buffer grows to the
// largest query seen and stays, so a warm server's steady state
// allocates nothing.
type scoreScratch struct {
	imp   imputeScratch   // Eqn-18 accumulator (single-worker impute)
	rows  []linalg.Vector // per-row imputed feature buffers
	sub   []linalg.Vector // row-header views for subset rescoring
	kdata []float64       // backing array of the kernel value matrix
	km    linalg.Matrix   // header over kdata, reshaped per query
	memo  batchMemo       // A-side friend memo + friend-pair raw memo

	// The two-tier lazy-impute buffers: which leased rows are
	// materialized, and the gather slots for the subset that is not yet
	// (fold-memo hits skip imputation until the exact rescore needs the
	// row — most never do).
	rowOK  []bool
	miss   []int
	mpairs [][2]int
	mrows  []linalg.Vector
}

// ensureRows returns n per-row buffers, keeping previously grown ones.
func (sc *scoreScratch) ensureRows(n int) []linalg.Vector {
	for len(sc.rows) < n {
		sc.rows = append(sc.rows, nil)
	}
	return sc.rows[:n]
}

// single returns the batch-of-one feature buffer (row 0, truncated for
// appending); setSingle stores it back after a possible regrow.
func (sc *scoreScratch) single() linalg.Vector {
	rows := sc.ensureRows(1)
	return rows[0][:0]
}

func (sc *scoreScratch) setSingle(x linalg.Vector) { sc.rows[0] = x }

// ensureSub returns an n-slot buffer of row headers for subset views
// over the imputed rows — no feature data is copied, the views alias
// sc.rows' buffers.
func (sc *scoreScratch) ensureSub(n int) []linalg.Vector {
	if cap(sc.sub) < n {
		sc.sub = make([]linalg.Vector, n)
	}
	return sc.sub[:n]
}

// ensureRowOK returns an n-slot materialization flag buffer (contents
// unspecified — BeginTwoTier writes every slot).
func (sc *scoreScratch) ensureRowOK(n int) []bool {
	if cap(sc.rowOK) < n {
		sc.rowOK = make([]bool, n)
	}
	return sc.rowOK[:n]
}

// ensureMissPairs / ensureMissRows return n-slot gather buffers for the
// lazily imputed subset of a two-tier batch.
func (sc *scoreScratch) ensureMissPairs(n int) [][2]int {
	if cap(sc.mpairs) < n {
		sc.mpairs = make([][2]int, n)
	}
	return sc.mpairs[:n]
}

func (sc *scoreScratch) ensureMissRows(n int) []linalg.Vector {
	if cap(sc.mrows) < n {
		sc.mrows = make([]linalg.Vector, n)
	}
	return sc.mrows[:n]
}

// ensureKmat reshapes the pooled kernel matrix to rows×cols.
func (sc *scoreScratch) ensureKmat(rows, cols int) *linalg.Matrix {
	need := rows * cols
	if cap(sc.kdata) < need {
		sc.kdata = make([]float64, need)
	}
	sc.km = linalg.Matrix{Rows: rows, Cols: cols, Data: sc.kdata[:need]}
	return &sc.km
}

func (m *Model) getScratch() *scoreScratch {
	if v := m.scratch.Get(); v != nil {
		return v.(*scoreScratch)
	}
	return &scoreScratch{}
}

// ScoreBatchInto scores a batch of account pairs into out (len(out) must
// equal len(pairs)) with zero steady-state allocations: imputation,
// kernel evaluation and the α/bias fold all run on pooled scratch. The
// per-pair evaluation order matches the scalar Decision loop exactly, so
// the scores are bit-identical to per-pair Score at any worker count
// (workers ≤ 0 = all cores). On error, out's contents are unspecified;
// the error is the lowest-index pair's, like a sequential loop's.
func (m *Model) ScoreBatchInto(pa platform.ID, pb platform.ID, pairs [][2]int, workers int, out []float64) error {
	if len(out) != len(pairs) {
		return fmt.Errorf("core: ScoreBatchInto got %d output slots for %d pairs", len(out), len(pairs))
	}
	n := len(pairs)
	if n == 0 {
		return nil
	}
	sc := m.getScratch()
	defer m.scratch.Put(sc)
	rows := sc.ensureRows(n)
	if err := m.imputeBatch(sc, rows, pa, pb, pairs, workers); err != nil {
		return err
	}
	// All kernel values in one blocked pass: km[j][i] = K(sv_j, x_i),
	// the exact Eval argument order of the scalar loop, parallel over
	// support rows.
	km := sc.ensureKmat(len(m.svXs), n)
	kernel.CrossGramInto(m.kern, m.svXs, rows, km, workers)
	// Fold α and the bias, walking km row by row so the reads are
	// sequential; every output slot still accumulates bias then
	// α_j·K(sv_j, x_i) in ascending support order — the same float
	// addition sequence as Decision, hence bit-exact.
	for i := range out {
		out[i] = m.bias
	}
	for j, a := range m.svAlpha {
		row := km.Data[j*n : (j+1)*n]
		for i, kv := range row {
			out[i] += a * kv
		}
	}
	return nil
}

// imputeBatch fills rows[i] with the imputed feature vector of pairs[i],
// consulting the pack-time impute table first and memoizing A-side
// friend resolution plus friend-pair raw vectors across the batch for
// the pairs the table misses. With one worker it runs inline on pooled
// scratch (no goroutines, no closures — zero allocations); with more it
// fans contiguous chunks over the pool, each chunk with its own
// accumulator, and reports the lowest-index error.
func (m *Model) imputeBatch(sc *scoreScratch, rows []linalg.Vector, pa, pb platform.ID, pairs [][2]int, workers int) error {
	n := len(pairs)
	memo := sc.memo.reset(m.src, pa)
	tbl := m.servingTable()
	w := parallel.Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := range pairs {
			x, err := sc.imp.imputePairInto(rows[i][:0], m.src, memo, tbl,
				pa, pairs[i][0], pb, pairs[i][1], m.cfg.Variant, m.cfg.TopFriends)
			if err != nil {
				return err
			}
			rows[i] = x
		}
		return nil
	}
	errs := parallel.MapChunks(w, n, func(lo, hi int) []error {
		var isc imputeScratch
		for i := lo; i < hi; i++ {
			x, err := isc.imputePairInto(rows[i][:0], m.src, memo, tbl,
				pa, pairs[i][0], pb, pairs[i][1], m.cfg.Variant, m.cfg.TopFriends)
			if err != nil {
				// First error of the chunk wins; chunks are contiguous
				// and scanned in order below, so the reported error is
				// the lowest-index one — what a sequential loop hits.
				return []error{err}
			}
			rows[i] = x
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
