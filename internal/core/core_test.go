package core

import (
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// buildSystem creates a synthetic world and a trained System over it.
func buildSystem(t *testing.T, persons int, plats []platform.ID, seed int64) (*synth.World, *System) {
	t.Helper()
	w, err := synth.Generate(synth.DefaultConfig(persons, plats, seed))
	if err != nil {
		t.Fatal(err)
	}
	// Attribute-importance training labels from the first half of persons.
	var people []int
	for p := 0; p < persons/2; p++ {
		people = append(people, p)
	}
	labeled := LabeledProfilePairs(w.Dataset, plats[0], plats[1], people)
	fcfg := features.DefaultConfig(seed)
	fcfg.LDAIterations = 25
	fcfg.MaxLDADocs = 1500
	sys, err := NewSystem(w.Dataset, labeled, features.Lexicons{
		Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment,
	}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, sys
}

func buildTask(t *testing.T, sys *System, pa, pb platform.ID, opts LabelOpts) *Task {
	t.Helper()
	block, err := BuildBlock(sys, pa, pb, blocking.DefaultRules(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return &Task{Blocks: []*Block{block}}
}

func TestTrainValidation(t *testing.T) {
	_, sys := buildSystem(t, 20, platform.EnglishPlatforms, 1)
	if _, err := Train(sys, &Task{}, DefaultConfig(1)); err == nil {
		t.Fatal("expected error for empty task")
	}
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(1))
	bad := DefaultConfig(1)
	bad.GammaL = 0
	if _, err := Train(sys, task, bad); err == nil {
		t.Fatal("expected error for GammaL=0")
	}
	bad = DefaultConfig(1)
	bad.P = 0.5
	if _, err := Train(sys, task, bad); err == nil {
		t.Fatal("expected error for p<1")
	}
	// A task with no labels must be rejected.
	unlabeled := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0, NegPerPos: 0, UsePreMatched: false, Seed: 1})
	if _, err := Train(sys, unlabeled, DefaultConfig(1)); err == nil {
		t.Fatal("expected error for unlabeled task")
	}
}

func TestTrainAndEvaluateEnglish(t *testing.T) {
	_, sys := buildSystem(t, 60, platform.EnglishPlatforms, 2)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(2))
	st := task.Stats()
	if st.Labeled == 0 || st.Positives == 0 {
		t.Fatalf("task stats: %+v", st)
	}
	linker := &HydraLinker{Cfg: DefaultConfig(2)}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	conf, err := EvaluateLinker(sys, linker, task.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Precision() < 0.6 {
		t.Fatalf("HYDRA precision %v too low: %s", conf.Precision(), conf)
	}
	if conf.Recall() < 0.4 {
		t.Fatalf("HYDRA recall %v too low: %s", conf.Recall(), conf)
	}
	m := linker.Model()
	if m.Diag.N == 0 || m.Diag.NL == 0 || m.Diag.SMOIters == 0 {
		t.Fatalf("diagnostics incomplete: %+v", m.Diag)
	}
}

func TestHydraMBeatsHydraZUnderMissingness(t *testing.T) {
	// Crank missingness up and compare variants on the same system.
	cfg := synth.DefaultConfig(70, platform.EnglishPlatforms, 3)
	cfg.MissingScale = 1.4
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var people []int
	for p := 0; p < 35; p++ {
		people = append(people, p)
	}
	labeled := LabeledProfilePairs(w.Dataset, platform.Twitter, platform.Facebook, people)
	fcfg := features.DefaultConfig(3)
	fcfg.LDAIterations = 20
	fcfg.MaxLDADocs = 1200
	sys, err := NewSystem(w.Dataset, labeled, features.Lexicons{
		Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment,
	}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(3))

	f1 := func(v Variant) float64 {
		cfg := DefaultConfig(3)
		cfg.Variant = v
		linker := &HydraLinker{Cfg: cfg}
		if err := linker.Fit(sys, task); err != nil {
			t.Fatal(err)
		}
		conf, err := EvaluateLinker(sys, linker, task.Blocks)
		if err != nil {
			t.Fatal(err)
		}
		return conf.F1()
	}
	fm, fz := f1(HydraM), f1(HydraZ)
	// HYDRA-M should not be worse; with heavy missingness it usually wins.
	if fm < fz-0.03 {
		t.Fatalf("HYDRA-M (%v) materially worse than HYDRA-Z (%v)", fm, fz)
	}
}

func TestScoreSeparatesPairs(t *testing.T) {
	w, sys := buildSystem(t, 50, platform.EnglishPlatforms, 4)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(4))
	linker := &HydraLinker{Cfg: DefaultConfig(4)}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	var posSum, negSum float64
	nPos, nNeg := 0, 0
	for person := 0; person < 30; person++ {
		a, _ := w.Dataset.AccountOf(person, platform.Twitter)
		b, _ := w.Dataset.AccountOf(person, platform.Facebook)
		bn, _ := w.Dataset.AccountOf((person+13)%50, platform.Facebook)
		sp, err := linker.PairScore(platform.Twitter, a, platform.Facebook, b)
		if err != nil {
			t.Fatal(err)
		}
		sn, err := linker.PairScore(platform.Twitter, a, platform.Facebook, bn)
		if err != nil {
			t.Fatal(err)
		}
		posSum += sp
		negSum += sn
		nPos++
		nNeg++
	}
	if posSum/float64(nPos) <= negSum/float64(nNeg) {
		t.Fatalf("mean positive score %v should exceed mean negative %v",
			posSum/float64(nPos), negSum/float64(nNeg))
	}
}

func TestTrainWithPGreaterThanOne(t *testing.T) {
	_, sys := buildSystem(t, 40, platform.EnglishPlatforms, 5)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(5))
	cfg := DefaultConfig(5)
	cfg.P = 3
	cfg.ReweightIters = 3
	linker := &HydraLinker{Cfg: cfg}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	m := linker.Model()
	if m.Diag.ReweightDone != 3 {
		t.Fatalf("reweighting rounds = %d, want 3", m.Diag.ReweightDone)
	}
	if m.Diag.EffGammaM == cfg.GammaM {
		t.Log("effective gamma unchanged (objectives balanced); acceptable")
	}
	conf, err := EvaluateLinker(sys, linker, task.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if conf.F1() == 0 {
		t.Fatalf("p>1 model learned nothing: %s", conf)
	}
}

func TestMultiPlatformTask(t *testing.T) {
	_, sys := buildSystem(t, 40, platform.ChinesePlatforms[:3], 6)
	b1, err := BuildBlock(sys, platform.SinaWeibo, platform.TencentWeibo, blocking.DefaultRules(), DefaultLabelOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BuildBlock(sys, platform.SinaWeibo, platform.Renren, blocking.DefaultRules(), DefaultLabelOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	task := &Task{Blocks: []*Block{b1, b2}}
	linker := &HydraLinker{Cfg: DefaultConfig(6)}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	conf, err := EvaluateLinker(sys, linker, task.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if conf.TP == 0 {
		t.Fatalf("multi-platform model found no true pairs: %s", conf)
	}
}

func TestImputeVariants(t *testing.T) {
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, 7)
	// Find a pair with missing dims.
	for a := 0; a < 10; a++ {
		pv, err := sys.RawPair(platform.Twitter, a, platform.Facebook, a)
		if err != nil {
			t.Fatal(err)
		}
		hasMissing := false
		for _, m := range pv.Mask {
			if !m {
				hasMissing = true
				break
			}
		}
		if !hasMissing {
			continue
		}
		xz, err := sys.Impute(platform.Twitter, a, platform.Facebook, a, HydraZ, 3)
		if err != nil {
			t.Fatal(err)
		}
		xm, err := sys.Impute(platform.Twitter, a, platform.Facebook, a, HydraM, 3)
		if err != nil {
			t.Fatal(err)
		}
		// HYDRA-Z leaves missing dims at zero.
		for d, m := range pv.Mask {
			if !m && xz[d] != 0 {
				t.Fatal("HYDRA-Z filled a missing dim")
			}
			if m && (xz[d] != pv.X[d] || xm[d] != pv.X[d]) {
				t.Fatal("observed dims must be untouched")
			}
		}
		return
	}
	t.Skip("no pair with missing features found")
}

func TestLabeledProfilePairs(t *testing.T) {
	w, _ := buildSystem(t, 20, platform.EnglishPlatforms, 8)
	pairs := LabeledProfilePairs(w.Dataset, platform.Twitter, platform.Facebook, []int{0, 1, 2, 3})
	if len(pairs) < 6 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	pos, neg := 0, 0
	for _, p := range pairs {
		if p.Positive {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatal("need both label classes")
	}
	if got := LabeledProfilePairs(w.Dataset, "nope", platform.Facebook, []int{0}); got != nil {
		t.Fatal("unknown platform should give nil")
	}
}

func TestVariantString(t *testing.T) {
	if HydraM.String() != "HYDRA-M" || HydraZ.String() != "HYDRA-Z" {
		t.Fatal("variant names wrong")
	}
}

// TestReweightSharesOneLKProduct pins the solveOnce hoist: with p>1 the
// reweighted scalarization runs ReweightIters rounds, but the n×n×n
// product L·K must be computed exactly once per training run — each round
// rebuilds A from the cached product by scale+AddDiag.
func TestReweightSharesOneLKProduct(t *testing.T) {
	_, sys := buildSystem(t, 40, platform.EnglishPlatforms, 8)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(8))
	cfg := DefaultConfig(8)
	cfg.P = 2
	cfg.ReweightIters = 3
	m, err := Train(sys, task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Diag.ReweightDone != 3 {
		t.Fatalf("reweight rounds = %d, want 3", m.Diag.ReweightDone)
	}
	if m.Diag.LKProducts != 1 {
		t.Fatalf("L·K products = %d, want exactly 1 across all rounds", m.Diag.LKProducts)
	}
}
