package core

import (
	"math"
	"reflect"
	"testing"

	"hydra/internal/linalg"
	"hydra/internal/platform"
)

// trainedParts trains a small model through the real pipeline and
// returns its serialized parts — the input BuildPrescreen sees at pack
// time.
func trainedParts(t *testing.T) (*System, *Task, ModelParts) {
	t.Helper()
	const seed = 2
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, seed)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(seed))
	m, err := Train(sys, task, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := m.Parts()
	if err != nil {
		t.Fatal(err)
	}
	return sys, task, parts
}

// TestBuildPrescreenDeterministicAndCertified asserts the build is a
// pure function of its inputs (two builds are deep-equal, so packed
// bundles stay byte-reproducible) and that the certified margin really
// bounds the prescreen error on every training candidate.
func TestBuildPrescreenDeterministicAndCertified(t *testing.T) {
	_, _, parts := trainedParts(t)
	ps, err := BuildPrescreen(parts, PrescreenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := BuildPrescreen(parts, PrescreenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, ps2) {
		t.Fatal("two builds from the same parts differ")
	}
	if ps.Eps <= 0 || ps.Eps < ps.EpsRaw {
		t.Fatalf("margin ε=%g (raw %g) is not a usable certified bound", ps.Eps, ps.EpsRaw)
	}
	state := newPrescreenState(ps)
	sigma2 := 2 * parts.KernelSigma * parts.KernelSigma
	worst := 0.0
	for _, x := range parts.Xs {
		exact := parts.Bias
		for j, a := range parts.Alpha {
			if a == 0 {
				continue
			}
			exact += a * math.Exp(-linalg.SqDist(parts.Xs[j], x)/sigma2)
		}
		if gap := math.Abs(exact - state.score(x, parts.Bias)); gap > worst {
			worst = gap
		}
	}
	if worst > ps.EpsRaw {
		t.Fatalf("observed error %g exceeds the measured EpsRaw %g", worst, ps.EpsRaw)
	}
}

// TestBuildPrescreenRejectsNonRBF asserts non-RBF models serve
// exact-only rather than getting an uncertifiable prescreen.
func TestBuildPrescreenRejectsNonRBF(t *testing.T) {
	_, _, parts := trainedParts(t)
	bad := parts
	bad.KernelKind = KernelLinear
	bad.KernelSigma = 0
	if _, err := BuildPrescreen(bad, PrescreenOpts{}); err == nil {
		t.Fatal("expected error for a linear-kernel model")
	}
}

// TestPrescreenPartsValidate asserts tampered parts are rejected before
// they can mis-prune.
func TestPrescreenPartsValidate(t *testing.T) {
	_, _, parts := trainedParts(t)
	ps, err := BuildPrescreen(parts, PrescreenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	bad := *ps
	bad.Eps = bad.EpsRaw / 2
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for ε below the measured error")
	}
	bad = *ps
	bad.C = bad.C[:len(bad.C)-1]
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for truncated centers")
	}
	bad = *ps
	bad.Sigma = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for a zeroed reduced-set bandwidth")
	}
	bad = *ps
	bad.V = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for a missing fitted vector")
	}
	mixed, err := BuildPrescreen(parts, PrescreenOpts{Features: 48, RFF: 16})
	if err != nil {
		t.Fatal(err)
	}
	bad = *mixed
	bad.W = bad.W[:len(bad.W)-1]
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for a truncated Fourier projection")
	}
}

// TestBuildPrescreenMixedBasis keeps the Fourier block of the format
// honest: a build that asks for cosine features alongside the
// reduced-set bumps must stay deterministic and certified too.
func TestBuildPrescreenMixedBasis(t *testing.T) {
	_, _, parts := trainedParts(t)
	ps, err := BuildPrescreen(parts, PrescreenOpts{Features: 48, RFF: 16})
	if err != nil {
		t.Fatal(err)
	}
	if ps.RFF != 16 || ps.Features != 48 {
		t.Fatalf("asked for 16 of 48 Fourier features, got %d of %d", ps.RFF, ps.Features)
	}
	if len(ps.W) != 16*ps.Dim || len(ps.B) != 16 || len(ps.C) != 32*ps.Dim || len(ps.V) != 48 {
		t.Fatalf("mixed-basis shapes wrong: |W|=%d |B|=%d |C|=%d |V|=%d dim=%d", len(ps.W), len(ps.B), len(ps.C), len(ps.V), ps.Dim)
	}
	ps2, err := BuildPrescreen(parts, PrescreenOpts{Features: 48, RFF: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, ps2) {
		t.Fatal("two mixed-basis builds from the same parts differ")
	}
	state := newPrescreenState(ps)
	sigma2 := 2 * parts.KernelSigma * parts.KernelSigma
	for _, x := range parts.Xs {
		exact := parts.Bias
		for j, a := range parts.Alpha {
			if a == 0 {
				continue
			}
			exact += a * math.Exp(-linalg.SqDist(parts.Xs[j], x)/sigma2)
		}
		if gap := math.Abs(exact - state.score(x, parts.Bias)); gap > ps.EpsRaw {
			t.Fatalf("mixed-basis error %g exceeds the measured EpsRaw %g", gap, ps.EpsRaw)
		}
	}
}

// TestPrescreenBatchIntoMatchesState asserts the batched prescreen path
// equals the scalar fold on the imputed vectors, at 1 and 4 workers —
// the determinism the two-tier rescore order relies on — and that the
// margin holds on real query pairs, not just training candidates.
func TestPrescreenBatchIntoMatchesState(t *testing.T) {
	sys, task, parts := trainedParts(t)
	ps, err := BuildPrescreen(parts, PrescreenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFromParts(sys, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPrescreen(ps); err != nil {
		t.Fatal(err)
	}
	if !m.HasPrescreen() || m.PrescreenEps() != ps.Eps {
		t.Fatal("prescreen not attached")
	}
	b := task.Blocks[0]
	pairs := make([][2]int, len(b.Cands))
	for i, c := range b.Cands {
		pairs[i] = [2]int{c.A, c.B}
	}
	var want []float64
	for _, workers := range []int{1, 4} {
		got := make([]float64, len(pairs))
		if err := m.PrescreenBatchInto(b.PA, b.PB, pairs, workers, got); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=4: prescreen score %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
	exact, err := m.ScoreBatchWorkers(b.PA, b.PB, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if gap := math.Abs(exact[i] - want[i]); gap > ps.Eps {
			t.Fatalf("pair %d: |f − f̃| = %g exceeds the certified ε = %g", i, gap, ps.Eps)
		}
	}
}

// TestSetPrescreenRejectsNarrowProjection asserts a projection narrower
// than the model's feature space is refused — it would silently ignore
// trailing features and void the certified margin.
func TestSetPrescreenRejectsNarrowProjection(t *testing.T) {
	sys, _, parts := trainedParts(t)
	ps, err := BuildPrescreen(parts, PrescreenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFromParts(sys, parts)
	if err != nil {
		t.Fatal(err)
	}
	narrow := *ps
	narrow.Dim = ps.Dim - 1
	narrow.W = ps.W[:narrow.RFF*narrow.Dim]
	narrow.C = ps.C[:(narrow.Features-narrow.RFF)*narrow.Dim]
	if err := m.SetPrescreen(&narrow); err == nil {
		t.Fatal("expected error for a projection narrower than the feature space")
	}
	if m.HasPrescreen() {
		t.Fatal("failed SetPrescreen must not attach")
	}
}
