package core

// The approximate prescreen behind the two-tier top-k path. The exact
// decision function (Eqn 12) costs one RBF evaluation per support
// vector per candidate — the support-set floor no amount of batching
// breaks. The prescreen replaces that expansion with a single m-term
// feature fold f̃(x) = bias + Σ V_i·φ_i(x) fitted once at build time,
// where the basis mixes two optional blocks of equal per-feature cost
// (one dim-length pass each):
//
//   - random Fourier features of the learned RBF bandwidth (see
//     internal/kernel's RFF): φ_i(x) = cos(W_i·x + B_i) from the seeded
//     draw. Measured on real bundles, a pure-RFF fold needs several
//     hundred features before its certified margin prunes anything —
//     the global cosines average away the spiky RBF mixture — at which
//     point the fold costs more than the exact expansion it fronts.
//   - a reduced support expansion: φ_j(x) = K(c_j, x) with centers c_j
//     the highest-|α| support vectors. The decision function literally
//     lives in the span of such bumps, so 64 of them fit it an order
//     of magnitude tighter than 64 cosines; this block is what the
//     packers ship (RFF = 0), and the RFF block remains for models
//     whose support sets are too small or too diffuse to subsample.
//
// The approximation never decides anything. At build time the maximum
// prescreen error is measured over every training candidate plus the
// packer's sample of actual query-space imputed vectors — exhaustive
// for bundles whose serving cross product fits the sample cap — and
// inflated by a safety factor into the certified margin ε; a top-k
// query then only uses f̃ to *skip* candidates provably outside the
// running k-th best (f̃ < kth − ε ⇒ f < kth), and the survivors are
// rescored by the exact batched kernel, which alone produces output.
// Scores, rankings and tie-breaks therefore stay bit-identical to the
// exact-only engine by construction — see serve.Engine.TopKAppend and
// the TestPrescreenBitExact / property oracles.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// DefaultPrescreenFeatures is the RFF feature count m the packers build
// with: small enough that a prescreen score (one m-dim cosine fold)
// stays far below the support-set cost it replaces, large enough that
// the empirical margin ε still prunes (ε shrinks ~1/√m).
const DefaultPrescreenFeatures = 64

// DefaultPrescreenSafety inflates the empirically measured maximum
// error into the certified margin ε when the packer could only SAMPLE
// the query cross product: the factor covers the pairs the sample did
// not contain. A packer that enumerated the cross product exhaustively
// passes Safety = 1 — the measured maximum then IS the true maximum
// over every query the bundle can be asked.
const DefaultPrescreenSafety = 2

// prescreenSeedMix decorrelates the RFF projection stream from every
// other consumer of Config.Seed (the synth generator, shard hashing).
const prescreenSeedMix = 0x5ca1ab1e

// prescreenRidge scales the ridge term of the collapsed-vector fit,
// relative to the features' weighted mean square (trace(ZᵀΩZ)/m).
const prescreenRidge = 1e-5

// prescreenIRLSRounds bounds the iteratively reweighted refits that
// push the fit from least-squares toward minimax: each round reweights
// every point by its squared residual, so the worst-fitted pairs — the
// ones that set ε — dominate the next solve. Plain least squares leaves
// ε 2–4× larger at the same feature count.
const prescreenIRLSRounds = 12

// prescreenIRLSFloor keeps perfectly-fitted points from dropping out of
// the reweighted solve entirely.
const prescreenIRLSFloor = 1e-3

// PrescreenParts is the serialized prescreen: everything a server needs
// to score approximately without paying the build (the projection, the
// collapsed decision vector and the certified margin). It rides bundles
// as an optional section — absent parts mean exact-only serving.
type PrescreenParts struct {
	// Features is the total fold length m; Dim the input dimensionality
	// each feature row spans. RFF of the m features are cosines from
	// the seeded Fourier draw; the remaining m−RFF are reduced-set
	// kernel bumps at the Centers rows.
	Features int `json:"features"`
	RFF      int `json:"rff"`
	Dim      int `json:"dim"`
	// Seed drew the Fourier projection; kept so a rebuild reproduces
	// the bytes (recorded even when RFF = 0).
	Seed int64 `json:"seed"`
	// W is the RFF×Dim projection (row-major) and B the RFF phases of
	// the underlying kernel.RFF map. Both empty when RFF = 0.
	W linalg.Vector `json:"w"`
	B linalg.Vector `json:"b"`
	// C holds the (Features−RFF)×Dim reduced-set centers (row-major,
	// zero-padded rows of the model's highest-|α| support vectors) and
	// Sigma the RBF bandwidth their bumps are evaluated at.
	C     linalg.Vector `json:"c"`
	Sigma float64       `json:"sigma"`
	// V is the fitted decision vector over the concatenated basis:
	// f̃(x) = bias + Σ_{i<RFF} V[i]·cos(W_i·x + B[i])
	//              + Σ_{j} V[RFF+j]·exp(−‖C_j − x‖² / 2σ²).
	V linalg.Vector `json:"v"`
	// EpsRaw is the maximum |f − f̃| measured at build time over every
	// training candidate and query-space sample; Eps = EpsRaw·Safety is
	// the certified margin queries prune with.
	EpsRaw float64 `json:"eps_raw"`
	Safety float64 `json:"safety"`
	Eps    float64 `json:"eps"`
}

// Validate checks the parts' internal consistency (shape and margin).
func (p *PrescreenParts) Validate() error {
	if p.Features <= 0 || p.Dim <= 0 {
		return fmt.Errorf("core: prescreen parts need positive shape, got %d features over dim %d", p.Features, p.Dim)
	}
	if p.RFF < 0 || p.RFF > p.Features {
		return fmt.Errorf("core: prescreen claims %d Fourier features of %d total", p.RFF, p.Features)
	}
	if len(p.W) != p.RFF*p.Dim {
		return fmt.Errorf("core: prescreen projection has %d entries, want %d×%d", len(p.W), p.RFF, p.Dim)
	}
	if len(p.B) != p.RFF {
		return fmt.Errorf("core: prescreen has %d phases for %d Fourier features", len(p.B), p.RFF)
	}
	rs := p.Features - p.RFF
	if len(p.C) != rs*p.Dim {
		return fmt.Errorf("core: prescreen centers have %d entries, want %d×%d", len(p.C), rs, p.Dim)
	}
	if rs > 0 && (math.IsNaN(p.Sigma) || p.Sigma <= 0) {
		return fmt.Errorf("core: prescreen reduced-set bandwidth σ=%g is not usable", p.Sigma)
	}
	if len(p.V) != p.Features {
		return fmt.Errorf("core: prescreen has %d fitted weights for %d features", len(p.V), p.Features)
	}
	if math.IsNaN(p.Eps) || p.Eps < 0 {
		return fmt.Errorf("core: prescreen margin ε=%g is not a valid bound", p.Eps)
	}
	if p.Eps < p.EpsRaw {
		return fmt.Errorf("core: prescreen margin ε=%g below the measured error %g — pruning would not be certified", p.Eps, p.EpsRaw)
	}
	return nil
}

// PrescreenOpts tunes BuildPrescreen; the zero value selects the
// defaults (DefaultPrescreenFeatures, DefaultPrescreenSafety, a seed
// derived from the model's training seed).
type PrescreenOpts struct {
	// Features is the total fold length; RFF of them are Fourier
	// cosines (0 = the all-reduced-set default the packers ship).
	Features int
	RFF      int
	Safety   float64
	// Seed overrides the projection seed when non-zero.
	Seed int64
	// Queries is a sample of query-time imputed pair vectors (see
	// Model.ImputedPairRows) drawn from the bundle's serving cross
	// product. The training candidates alone badly under-represent the
	// query distribution — arbitrary pairs impute into regions no
	// labeled candidate occupies, and a prescreen fitted and certified
	// only on candidates measures an ε many times too small out there.
	// Every sample joins both the fit and the certification; a packer
	// that could not enumerate the cross product exhaustively covers
	// the unsampled remainder with Safety > 1.
	Queries []linalg.Vector
}

// BuildPrescreen builds the approximate prescreen for a trained RBF
// model from its serialized parts: it assembles the feature basis (the
// seeded RFF draw when opts.RFF > 0, highest-|α| support vectors as
// reduced-set centers for the rest), fits the decision vector by
// iteratively reweighted ridge regression, and certifies the margin ε
// empirically over every training candidate plus every supplied
// query-space sample. The build is a pure function of (parts, opts) —
// packing the same model twice yields byte-identical prescreen
// sections. Non-RBF models have neither a Fourier feature map nor
// bandwidthed bumps; they serve exact-only.
func BuildPrescreen(p ModelParts, opts PrescreenOpts) (*PrescreenParts, error) {
	if p.KernelKind != KernelRBF {
		return nil, fmt.Errorf("core: prescreen needs an RBF model, got kernel %q", p.KernelKind)
	}
	if p.KernelSigma <= 0 {
		return nil, fmt.Errorf("core: prescreen needs a positive bandwidth, got %g", p.KernelSigma)
	}
	if len(p.Xs) == 0 || len(p.Alpha) != len(p.Xs) {
		return nil, fmt.Errorf("core: prescreen got %d duals for %d candidate vectors", len(p.Alpha), len(p.Xs))
	}
	m := opts.Features
	if m <= 0 {
		m = DefaultPrescreenFeatures
	}
	safety := opts.Safety
	if safety <= 0 {
		safety = DefaultPrescreenSafety
	}
	seed := opts.Seed
	if seed == 0 {
		seed = p.Cfg.Seed + prescreenSeedMix
	}
	// The point set the fit and certification run over: every training
	// candidate, then every query-space sample.
	pts := make([]linalg.Vector, 0, len(p.Xs)+len(opts.Queries))
	pts = append(pts, p.Xs...)
	pts = append(pts, opts.Queries...)
	dim := 0
	for _, x := range pts {
		if len(x) > dim {
			dim = len(x)
		}
	}
	nRFF := opts.RFF
	if nRFF < 0 || nRFF > m {
		return nil, fmt.Errorf("core: prescreen wants %d Fourier features of %d total", nRFF, m)
	}
	var wRFF, bRFF linalg.Vector
	if nRFF > 0 {
		rff, err := kernel.NewRFF(p.KernelSigma, dim, nRFF, seed)
		if err != nil {
			return nil, err
		}
		wRFF, bRFF = linalg.Vector(rff.W), linalg.Vector(rff.B)
	}

	// Reduced-set centers: the highest-|α| support vectors, zero-padded
	// to dim. |α| ranks how much of the decision surface each support
	// vector carries; ties break on candidate index so the build stays
	// a pure function of (parts, opts).
	type ranked struct {
		idx int
		mag float64
	}
	var sv []ranked
	for j, a := range p.Alpha {
		if a != 0 {
			sv = append(sv, ranked{j, math.Abs(a)})
		}
	}
	sort.Slice(sv, func(i, j int) bool {
		if sv[i].mag != sv[j].mag {
			return sv[i].mag > sv[j].mag
		}
		return sv[i].idx < sv[j].idx
	})
	nRS := m - nRFF
	if nRS > len(sv) {
		// Fewer support vectors than requested bumps: shrink the fold
		// rather than duplicating centers into a singular fit.
		nRS = len(sv)
		m = nRFF + nRS
	}
	centers := make(linalg.Vector, nRS*dim)
	for i := 0; i < nRS; i++ {
		copy(centers[i*dim:(i+1)*dim], p.Xs[sv[i].idx])
	}

	out := PrescreenParts{
		Features: m, RFF: nRFF, Dim: dim, Seed: seed,
		W: wRFF, B: bRFF,
		C: centers, Sigma: p.KernelSigma,
		Safety: safety,
	}
	sigma2 := 2 * p.KernelSigma * p.KernelSigma
	// Exact decision values at every point, accumulated bias-first —
	// the same float sequence Decision and the batched scorer run, so
	// the certification below measures the gap against the value a
	// query will actually compare with. Minus bias they double as the
	// regression targets.
	y := make([]float64, len(pts))
	for i, x := range pts {
		s := p.Bias
		for j, a := range p.Alpha {
			if a == 0 {
				continue
			}
			s += a * math.Exp(-linalg.SqDist(p.Xs[j], x)/sigma2)
		}
		y[i] = s
	}
	// Feature rows, computed once. The cosine block goes through
	// kernel.DotPhase and the bump block through the same SqDist/Exp
	// the query fold runs, so the fit lives in exactly the query's
	// float space.
	feats := make([]float64, len(pts)*m)
	for i, x := range pts {
		z := feats[i*m : (i+1)*m]
		for k := 0; k < nRFF; k++ {
			z[k] = math.Cos(kernel.DotPhase(wRFF[k*dim:(k+1)*dim], x, bRFF[k]))
		}
		for j := 0; j < nRS; j++ {
			z[nRFF+j] = math.Exp(-linalg.SqDist(centers[j*dim:(j+1)*dim], x) / sigma2)
		}
	}
	// Iteratively reweighted ridge solves of ΩZ·V ≈ Ω(y − bias): the
	// first round is plain least squares; each following round weights
	// every point by its squared residual, so the solve concentrates on
	// the worst-fitted pairs — ε is a max, not an average, and minimax
	// pressure is what shrinks it. All loops run in ascending point
	// order and the normal equations are solved by Cholesky, so the
	// build stays deterministic.
	weight := make([]float64, len(pts))
	for i := range weight {
		weight[i] = 1
	}
	gram := linalg.NewMatrix(m, m)
	for round := 0; round < prescreenIRLSRounds; round++ {
		for i := range gram.Data {
			gram.Data[i] = 0
		}
		rhs := linalg.NewVector(m)
		trace := 0.0
		for i := range pts {
			z := feats[i*m : (i+1)*m]
			wi := weight[i]
			for r := 0; r < m; r++ {
				zr := z[r]
				rhs[r] += wi * zr * (y[i] - p.Bias)
				row := gram.Row(r)
				for c := 0; c <= r; c++ {
					row[c] += wi * zr * z[c]
				}
				trace += wi * zr * zr
			}
		}
		for r := 0; r < m; r++ {
			for c := r + 1; c < m; c++ {
				gram.Set(r, c, gram.At(c, r))
			}
		}
		gram.AddDiag(prescreenRidge * trace / float64(m))
		chol, err := gram.Cholesky(1e-12)
		if err != nil {
			return nil, fmt.Errorf("core: prescreen ridge solve: %w", err)
		}
		out.V = linalg.SolveCholesky(chol, rhs)
		for i := range pts {
			z := feats[i*m : (i+1)*m]
			s := 0.0
			for r := 0; r < m; r++ {
				s += out.V[r] * z[r]
			}
			res := math.Abs(y[i]-p.Bias-s) + prescreenIRLSFloor
			weight[i] = res * res
		}
	}

	// Certify the margin over every point by literally running the
	// query fold (not the cached feature rows — any divergence between
	// the two would void the bound, so the measurement uses the serving
	// code path). ε is the worst observed gap inflated by the safety
	// factor, nudged up one ulp so a Safety = 1 exhaustive bound stays
	// on the safe side of the last rounding.
	ps := newPrescreenState(&out)
	for i, x := range pts {
		if gap := math.Abs(y[i] - ps.score(x, p.Bias)); gap > out.EpsRaw {
			out.EpsRaw = gap
		}
	}
	out.Eps = math.Nextafter(out.EpsRaw*safety, math.Inf(1))
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// foldCacheEntries bounds the per-model fold memo: at ~50 bytes per
// entry the cap keeps a long-lived server under ~16 MB of memoized fold
// values even across an adversarial sweep of the full pair space.
const foldCacheEntries = 1 << 18

// foldCache memoizes the certified fold value f̃ per account pair. For a
// served model the fold is a pure function of the pair — the source
// views are immutable and the prescreen is fixed at SetPrescreen — so a
// memoized value IS the bits a fresh fold would produce, and eviction
// only ever costs a recompute. Profiling after the pack-time impute
// table landed showed the fold itself (one exp + full-dim SqDist per
// bump per candidate, every candidate, every query) as the next top-k
// floor; the memo collapses a warm query's tier-1 pass to one map hit
// per candidate, and the two-tier lease then only materializes imputed
// rows for candidates that actually reach the exact rescore.
type foldCache struct {
	mu sync.Mutex
	m  map[pairKey]float64
	// hits/misses count BeginTwoTier lookups since the prescreen was
	// attached — atomic so stats reads never take the mutex.
	hits, misses atomic.Uint64
}

func (fc *foldCache) evictLocked(incoming int) {
	for len(fc.m) > foldCacheEntries-incoming {
		evicted := false
		for k := range fc.m {
			delete(fc.m, k)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

func (fc *foldCache) stats() (hits, misses uint64) {
	return fc.hits.Load(), fc.misses.Load()
}

func (fc *foldCache) size() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return len(fc.m)
}

// PrescreenFoldStats reports the fold memo's hit/miss counters and
// current size (all zero without a prescreen) — prescreen health for
// /healthz and /metrics.
func (m *Model) PrescreenFoldStats() (hits, misses uint64, size int) {
	if m.pre == nil {
		return 0, 0, 0
	}
	h, mi := m.pre.cache.stats()
	return h, mi, m.pre.cache.size()
}

// prescreenState is the query-time form of PrescreenParts: plain slices
// the hot fold walks without re-validating shapes.
type prescreenState struct {
	parts      *PrescreenParts
	dim        int
	rff, rs    int
	w, b, c, v []float64
	sigma2     float64
	eps        float64
	cache      foldCache
}

func newPrescreenState(p *PrescreenParts) *prescreenState {
	return &prescreenState{
		parts: p, dim: p.Dim, rff: p.RFF, rs: p.Features - p.RFF,
		w: p.W, b: p.B, c: p.C, v: p.V,
		sigma2: 2 * p.Sigma * p.Sigma, eps: p.Eps,
	}
}

// score evaluates the fold f̃(x) = bias + Σ v_i·cos(w_i·x + b_i)
//   - Σ v_{rff+j}·exp(−‖c_j − x‖²/2σ²).
//
// Both blocks run the identical float sequence (kernel.DotPhase,
// linalg.SqDist) the build's certification ran, in the same
// accumulation order — the measured ε is only valid because of that.
func (ps *prescreenState) score(x linalg.Vector, bias float64) float64 {
	s := bias
	d := ps.dim
	for i := 0; i < ps.rff; i++ {
		s += ps.v[i] * math.Cos(kernel.DotPhase(ps.w[i*d:(i+1)*d], x, ps.b[i]))
	}
	for j := 0; j < ps.rs; j++ {
		s += ps.v[ps.rff+j] * math.Exp(-linalg.SqDist(ps.c[j*d:(j+1)*d], x)/ps.sigma2)
	}
	return s
}

// SetPrescreen attaches validated prescreen parts to the model (the
// bundle restore path). The parts must span at least the model's
// feature dimensionality; a narrower projection would silently ignore
// trailing features and void the certified margin.
func (m *Model) SetPrescreen(p *PrescreenParts) error {
	if p == nil {
		m.pre = nil
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if m.svMat != nil && m.svMat.Cols > p.Dim {
		return fmt.Errorf("core: prescreen spans dim %d but the model's features span %d — rebuild the prescreen", p.Dim, m.svMat.Cols)
	}
	m.pre = newPrescreenState(p)
	return nil
}

// ClearPrescreen detaches the prescreen; the model serves exact-only.
func (m *Model) ClearPrescreen() { m.pre = nil }

// HasPrescreen reports whether an approximate prescreen is attached.
func (m *Model) HasPrescreen() bool { return m.pre != nil }

// Prescreen returns the attached prescreen parts (nil when exact-only).
// Callers must treat them as read-only.
func (m *Model) Prescreen() *PrescreenParts {
	if m.pre == nil {
		return nil
	}
	return m.pre.parts
}

// PrescreenEps returns the certified pruning margin ε (0 without a
// prescreen — but callers gate on HasPrescreen, not on ε).
func (m *Model) PrescreenEps() float64 {
	if m.pre == nil {
		return 0
	}
	return m.pre.eps
}

// ImputedPairRows returns one copy of the imputed feature vector per
// account pair — exactly the x every scoring path (exact batch, single
// pair, prescreen fold) evaluates for that pair. The packer samples the
// serving cross product through this to fit and certify the prescreen
// over the true query distribution instead of only the training
// candidates. Imputation is a pure per-pair function, so the rows are
// bit-identical at any worker count.
func (m *Model) ImputedPairRows(pa platform.ID, pb platform.ID, pairs [][2]int, workers int) ([]linalg.Vector, error) {
	n := len(pairs)
	if n == 0 {
		return nil, nil
	}
	sc := m.getScratch()
	defer m.scratch.Put(sc)
	rows := sc.ensureRows(n)
	if err := m.imputeBatch(sc, rows, pa, pb, pairs, workers); err != nil {
		return nil, err
	}
	out := make([]linalg.Vector, n)
	for i, r := range rows {
		out[i] = append(linalg.Vector(nil), r...)
	}
	return out, nil
}

// PrescreenBatchInto computes approximate scores f̃ for a batch of
// account pairs into out, on the same pooled impute path as
// ScoreBatchInto — zero steady-state allocations. Each slot is a pure
// per-pair function, so the values are bit-identical at any worker
// count; they are bounded by |f − f̃| ≤ ε only in the certified sense
// and MUST NOT be served — they exist to order and prune candidates
// ahead of the exact rescore.
func (m *Model) PrescreenBatchInto(pa platform.ID, pb platform.ID, pairs [][2]int, workers int, out []float64) error {
	if m.pre == nil {
		return fmt.Errorf("core: model has no prescreen attached")
	}
	if len(out) != len(pairs) {
		return fmt.Errorf("core: PrescreenBatchInto got %d output slots for %d pairs", len(out), len(pairs))
	}
	n := len(pairs)
	if n == 0 {
		return nil
	}
	sc := m.getScratch()
	defer m.scratch.Put(sc)
	rows := sc.ensureRows(n)
	if err := m.imputeBatch(sc, rows, pa, pb, pairs, workers); err != nil {
		return err
	}
	ps, bias := m.pre, m.bias
	if w := parallel.Workers(workers); w == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = ps.score(rows[i], bias)
		}
		return nil
	}
	parallel.For(workers, n, func(i int) {
		out[i] = ps.score(rows[i], bias)
	})
	return nil
}
