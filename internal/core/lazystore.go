package core

import (
	"fmt"
	"sync"

	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// LazySnapshot is the storage contract behind LazyStore: per-account
// views and friend slices materialized on demand, plus the counts and
// header-level strings that never need a section touch. It is the
// core-side face of pipeline.MappedBundle (core cannot import pipeline),
// but any snapshot that answers account-at-a-time works.
//
// View and Friends must return stable results: repeated calls for the
// same account must be safe under concurrency (the mapped implementation
// caches the first materialization behind an atomic pointer).
type LazySnapshot interface {
	// Platforms lists the snapshotted platform ids in sorted order.
	Platforms() []platform.ID
	// NumAccounts returns a platform's account count, -1 if absent.
	NumAccounts(id platform.ID) int
	// View materializes one account view.
	View(id platform.ID, local int) (*features.AccountView, error)
	// Friends materializes one account's full persisted friend slice
	// (rank order, cut at the snapshot's friendsK).
	Friends(id platform.ID, local int) ([]graph.Friend, error)
	// Username returns an account's profile username without
	// materializing the view (false when out of range or absent).
	Username(id platform.ID, local int) (string, bool)
}

// LazyStore is the mapped-backed sibling of Store: the same Source
// contract — same checks, same error text, bit-identical answers — but
// account state is pulled from a LazySnapshot on first touch instead of
// being decoded up front. Construction is O(platform count); nothing
// proportional to the snapshot's size happens until queries ask for it.
//
// Like Store, it is immutable after construction apart from the
// mutex-guarded pair cache and the lazily-filled full-platform view
// slices (Views — a compatibility path; the hot paths are per-account).
type LazyStore struct {
	pipe     *features.Pipeline
	snap     LazySnapshot
	plats    []platform.ID
	counts   map[platform.ID]int
	friendsK int
	faces    *vision.Matcher
	present  map[platform.ID][]bool
	pairs    pairCache
	tbl      *ImputeTable

	// viewsMu guards the full-platform materializations built by Views.
	// Per-account paths (RawPair, Friends, Username) never take it.
	viewsMu  sync.Mutex
	viewsAll map[platform.ID][]*features.AccountView
}

var _ Source = (*LazyStore)(nil)

// NewLazyStore assembles a lazy store over a snapshot, mirroring
// NewStore's validation.
func NewLazyStore(pipe *features.Pipeline, snap LazySnapshot, friendsK int, faces *vision.Matcher) (*LazyStore, error) {
	if pipe == nil {
		return nil, fmt.Errorf("core: NewLazyStore needs a pipeline")
	}
	if snap == nil {
		return nil, fmt.Errorf("core: NewLazyStore needs a snapshot")
	}
	plats := snap.Platforms()
	if len(plats) == 0 {
		return nil, fmt.Errorf("core: NewLazyStore needs at least one platform of views")
	}
	if friendsK <= 0 {
		return nil, fmt.Errorf("core: NewLazyStore needs a positive friendsK, got %d", friendsK)
	}
	if faces == nil {
		return nil, fmt.Errorf("core: NewLazyStore needs the face-matcher state")
	}
	counts := make(map[platform.ID]int, len(plats))
	for _, id := range plats {
		n := snap.NumAccounts(id)
		if n < 0 {
			return nil, fmt.Errorf("core: snapshot lists platform %s but has no accounts for it", id)
		}
		counts[id] = n
	}
	return &LazyStore{
		pipe:     pipe,
		snap:     snap,
		plats:    append([]platform.ID(nil), plats...),
		counts:   counts,
		friendsK: friendsK,
		faces:    faces,
	}, nil
}

// Restrict marks the store as a partial snapshot (see Store.Restrict).
// Called once at restore time, before any queries.
func (st *LazyStore) Restrict(present map[platform.ID][]bool) { st.present = present }

// Platforms lists the snapshotted platform ids in sorted order.
func (st *LazyStore) Platforms() []platform.ID {
	return append([]platform.ID(nil), st.plats...)
}

// FriendsK returns the per-account friend-slice depth of the snapshot.
func (st *LazyStore) FriendsK() int { return st.friendsK }

// Faces exposes the restored face matcher.
func (st *LazyStore) Faces() *vision.Matcher { return st.faces }

// numAccounts resolves a platform's account count with the same error a
// heap Store reports for an unknown platform.
func (st *LazyStore) numAccounts(id platform.ID) (int, error) {
	n, ok := st.counts[id]
	if !ok {
		return 0, fmt.Errorf("core: platform %s not in snapshot (have %v)", id, st.Platforms())
	}
	return n, nil
}

// Views materializes (and caches) a platform's full view slice. This is
// the Source-compatibility path — it defeats laziness for that platform,
// so serving code prefers the per-account accessors; the REPL and tests
// are the expected callers.
func (st *LazyStore) Views(id platform.ID) ([]*features.AccountView, error) {
	n, err := st.numAccounts(id)
	if err != nil {
		return nil, err
	}
	st.viewsMu.Lock()
	defer st.viewsMu.Unlock()
	if vs, ok := st.viewsAll[id]; ok {
		return vs, nil
	}
	vs := make([]*features.AccountView, n)
	for i := range vs {
		v, err := st.snap.View(id, i)
		if err != nil {
			return nil, err
		}
		vs[i] = v
	}
	if st.viewsAll == nil {
		st.viewsAll = make(map[platform.ID][]*features.AccountView)
	}
	st.viewsAll[id] = vs
	return vs, nil
}

// Username answers from the snapshot's header state without
// materializing the view — the REPL's per-result lookup.
func (st *LazyStore) Username(id platform.ID, local int) string {
	name, _ := st.snap.Username(id, local)
	return name
}

// RawPair returns the (cached) unimputed pair vector, materializing
// exactly the two views it needs. Check order and error text mirror
// Store.RawPair.
func (st *LazyStore) RawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error) {
	key := pairKey{pa, pb, a, b}
	if pv, ok := st.pairs.lookup(key); ok {
		return pv, nil
	}
	na, err := st.numAccounts(pa)
	if err != nil {
		return features.PairVector{}, err
	}
	nb, err := st.numAccounts(pb)
	if err != nil {
		return features.PairVector{}, err
	}
	if err := checkPairRangeN(pa, a, pb, b, na, nb); err != nil {
		return features.PairVector{}, err
	}
	if err := checkPresentIn(st.present, pa, a); err != nil {
		return features.PairVector{}, err
	}
	if err := checkPresentIn(st.present, pb, b); err != nil {
		return features.PairVector{}, err
	}
	va, err := st.snap.View(pa, a)
	if err != nil {
		return features.PairVector{}, err
	}
	vb, err := st.snap.View(pb, b)
	if err != nil {
		return features.PairVector{}, err
	}
	pv := st.pipe.Pair(va, vb)
	st.pairs.store(key, pv)
	return pv, nil
}

// SetImputeTable attaches a pack-time Eqn-18 table (see
// Store.SetImputeTable). Must be called before any queries.
func (st *LazyStore) SetImputeTable(t *ImputeTable) { st.tbl = t }

// ImputeTable returns the attached table, nil without one.
func (st *LazyStore) ImputeTable() *ImputeTable { return st.tbl }

// Impute fills missing dimensions per the variant (see Store.Impute).
func (st *LazyStore) Impute(pa platform.ID, a int, pb platform.ID, b int, v Variant, topFriends int) (linalg.Vector, error) {
	return imputePair(st, st.tbl, pa, a, pb, b, v, topFriends)
}

// Friends returns the top-k prefix of an account's persisted friend
// slice, materializing it on first touch. Check order and error text
// mirror Store.Friends.
func (st *LazyStore) Friends(id platform.ID, local, k int) ([]graph.Friend, error) {
	n, err := st.numAccounts(id)
	if err != nil {
		return nil, err
	}
	if local < 0 || local >= n {
		return nil, fmt.Errorf("core: account %d out of range (%s snapshot has %d)", local, id, n)
	}
	if err := checkPresentIn(st.present, id, local); err != nil {
		return nil, err
	}
	if k > st.friendsK {
		return nil, fmt.Errorf("core: imputation wants top-%d friends but the snapshot stores top-%d — repack the bundle with a larger TopFriends", k, st.friendsK)
	}
	f, err := st.snap.Friends(id, local)
	if err != nil {
		return nil, err
	}
	if k < len(f) {
		f = f[:k]
	}
	return f, nil
}

// LimitPairCache bounds the pair-vector cache (n ≤ 0 = unbounded).
func (st *LazyStore) LimitPairCache(n int) { st.pairs.limit(n) }

// CacheSize reports the number of cached pair vectors (diagnostics).
func (st *LazyStore) CacheSize() int { return st.pairs.size() }

// PairCacheStats reports the pair-cache hit/miss counters since process
// start (imputation health for /metrics).
func (st *LazyStore) PairCacheStats() (hits, misses uint64) { return st.pairs.stats() }
