package core

import (
	"fmt"
	"sort"

	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// Store is the snapshot-backed half of the Source split: it answers the
// same Views/RawPair/Impute/Faces contract as the dataset-backed System,
// but from precomputed state — decoded account views, top-friends
// adjacency slices and the face-matcher parameters — with no dataset, no
// LDA and no raw behavior data at all. A serving process restores one
// from a pipeline.Bundle; with views snapshotted from the system a model
// was trained on, every answer is bit-identical to the builder's.
//
// A Store is immutable after NewStore apart from its mutex-guarded pair
// cache, so it is safe for concurrent queries.
type Store struct {
	pipe  *features.Pipeline
	views map[platform.ID][]*features.AccountView
	// friends[id][local] holds account local's most-interacting friends,
	// best first — the top-friendsK prefix of the live graph's
	// TopFriends ranking, which is all HYDRA-M imputation (Eqn 18) ever
	// reads at query time.
	friends  map[platform.ID][][]graph.Friend
	friendsK int
	faces    *vision.Matcher
	// present marks, per restricted platform, which accounts' state this
	// snapshot actually carries (nil map / missing platform = all of it).
	// A sharded serving bundle restricts its B-side platforms to the
	// shard's slice plus its friend closure; queries touching anything
	// else fail here, loudly, instead of scoring a zeroed view.
	present map[platform.ID][]bool
	pairs   pairCache
	// tbl is the optional pack-time Eqn-18 table attached at restore
	// time (before any queries, so the field needs no locking); see
	// imputetable.go. Impute consults it first and the Model adopts it
	// through the imputeTableCarrier upgrade in prepareServing.
	tbl *ImputeTable
}

var _ Source = (*Store)(nil)

// NewStore assembles a snapshot store from decoded state. friends must
// hold, for every platform in views, one slice per account with its top
// friendsK most-interacting friends in rank order (shorter when the
// account's degree is smaller).
func NewStore(pipe *features.Pipeline, views map[platform.ID][]*features.AccountView,
	friends map[platform.ID][][]graph.Friend, friendsK int, faces *vision.Matcher) (*Store, error) {

	if pipe == nil {
		return nil, fmt.Errorf("core: NewStore needs a pipeline")
	}
	if len(views) == 0 {
		return nil, fmt.Errorf("core: NewStore needs at least one platform of views")
	}
	if friendsK <= 0 {
		return nil, fmt.Errorf("core: NewStore needs a positive friendsK, got %d", friendsK)
	}
	if faces == nil {
		return nil, fmt.Errorf("core: NewStore needs the face-matcher state")
	}
	for id, v := range views {
		fr, ok := friends[id]
		if !ok {
			return nil, fmt.Errorf("core: store has views but no friend slices for %s", id)
		}
		if len(fr) != len(v) {
			return nil, fmt.Errorf("core: %s has %d views but %d friend slices", id, len(v), len(fr))
		}
	}
	return &Store{pipe: pipe, views: views, friends: friends, friendsK: friendsK, faces: faces}, nil
}

// Restrict marks the store as a partial snapshot: for each listed
// platform, only the accounts whose flag is true have real state; every
// other account of that platform is a placeholder whose use is an error.
// Platforms not listed stay fully available. Called once at restore time
// (before any queries), so the field needs no locking.
func (st *Store) Restrict(present map[platform.ID][]bool) {
	st.present = present
}

// checkPresent rejects a query touching an account this partial
// snapshot does not carry.
func (st *Store) checkPresent(id platform.ID, local int) error {
	return checkPresentIn(st.present, id, local)
}

// Platforms lists the snapshotted platform ids in sorted order.
func (st *Store) Platforms() []platform.ID {
	out := make([]platform.ID, 0, len(st.views))
	for id := range st.views {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FriendsK returns the per-account friend-slice depth the snapshot was
// packed with (imputation can use any topFriends up to this).
func (st *Store) FriendsK() int { return st.friendsK }

// Faces exposes the restored face matcher.
func (st *Store) Faces() *vision.Matcher { return st.faces }

// Views returns the snapshotted account views of a platform.
func (st *Store) Views(id platform.ID) ([]*features.AccountView, error) {
	v, ok := st.views[id]
	if !ok {
		return nil, fmt.Errorf("core: platform %s not in snapshot (have %v)", id, st.Platforms())
	}
	return v, nil
}

// RawPair returns the (cached) unimputed pair vector, computed from the
// snapshotted views exactly as the builder computes it from fresh ones.
func (st *Store) RawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error) {
	key := pairKey{pa, pb, a, b}
	if pv, ok := st.pairs.lookup(key); ok {
		return pv, nil
	}
	va, err := st.Views(pa)
	if err != nil {
		return features.PairVector{}, err
	}
	vb, err := st.Views(pb)
	if err != nil {
		return features.PairVector{}, err
	}
	if err := checkPairRange(pa, a, pb, b, va, vb); err != nil {
		return features.PairVector{}, err
	}
	if err := st.checkPresent(pa, a); err != nil {
		return features.PairVector{}, err
	}
	if err := st.checkPresent(pb, b); err != nil {
		return features.PairVector{}, err
	}
	pv := st.pipe.Pair(va[a], vb[b])
	st.pairs.store(key, pv)
	return pv, nil
}

// SetImputeTable attaches a pack-time Eqn-18 table (the bundle restore
// path). Must be called before any queries — the store is otherwise
// immutable and the field is read without locking.
func (st *Store) SetImputeTable(t *ImputeTable) { st.tbl = t }

// ImputeTable returns the attached table, nil without one — the
// imputeTableCarrier upgrade Model.prepareServing probes for.
func (st *Store) ImputeTable() *ImputeTable { return st.tbl }

// Impute returns the pair vector with missing dimensions filled according
// to the variant, consulting the pack-time table first and otherwise
// resolving friends from the snapshot's adjacency slices (see
// imputePairInto for the shared Eqn-18 implementation).
func (st *Store) Impute(pa platform.ID, a int, pb platform.ID, b int, v Variant, topFriends int) (linalg.Vector, error) {
	return imputePair(st, st.tbl, pa, a, pb, b, v, topFriends)
}

// Friends returns the top-k prefix of an account's persisted friend
// slice. The slices are stored in the live graph's rank order, so any
// prefix up to friendsK equals what TopFriends would have returned.
func (st *Store) Friends(id platform.ID, local, k int) ([]graph.Friend, error) {
	fr, ok := st.friends[id]
	if !ok {
		return nil, fmt.Errorf("core: platform %s not in snapshot (have %v)", id, st.Platforms())
	}
	if local < 0 || local >= len(fr) {
		return nil, fmt.Errorf("core: account %d out of range (%s snapshot has %d)", local, id, len(fr))
	}
	if err := st.checkPresent(id, local); err != nil {
		return nil, err
	}
	if k > st.friendsK {
		return nil, fmt.Errorf("core: imputation wants top-%d friends but the snapshot stores top-%d — repack the bundle with a larger TopFriends", k, st.friendsK)
	}
	f := fr[local]
	if k < len(f) {
		f = f[:k]
	}
	return f, nil
}

// LimitPairCache bounds the pair-vector cache (n ≤ 0 = unbounded); see
// System.LimitPairCache for the serving rationale.
func (st *Store) LimitPairCache(n int) { st.pairs.limit(n) }

// CacheSize reports the number of cached pair vectors (diagnostics).
func (st *Store) CacheSize() int { return st.pairs.size() }

// PairCacheStats reports the pair-cache hit/miss counters since process
// start (imputation health for /metrics).
func (st *Store) PairCacheStats() (hits, misses uint64) { return st.pairs.stats() }
