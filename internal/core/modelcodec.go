package core

import (
	"fmt"

	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/platform"
)

// The model codec splits Train from Decision/Score across processes: a
// trained Model is reduced to ModelParts — plain exported data that
// marshals to JSON losslessly (Go's float64 encoding is shortest-uniquely-
// identifying, so every coefficient round-trips bit-exact) — and rebuilt
// with ModelFromParts against a freshly systemized dataset. The restored
// model produces bit-identical Decision/Score/Link values because all of
// its inputs (support vectors, duals, bias, kernel bandwidth, imputation
// config) are carried verbatim rather than recomputed.

// Kernel kind identifiers used by ModelParts.
const (
	KernelRBF    = "rbf"
	KernelLinear = "linear"
)

// ModelParts is the serializable state of a trained Model: everything
// Decision/Score/Link needs, and nothing tied to the training process.
// The remembered dual of TrainIncremental is deliberately excluded — a
// restored model serves queries and can seed a cold retrain, but does not
// warm-start one.
type ModelParts struct {
	// Cfg is the training configuration; Score needs Variant and
	// TopFriends, the rest is kept for provenance.
	Cfg Config `json:"cfg"`
	// KernelKind and KernelSigma pin the dual kernel, including the
	// learned median-heuristic bandwidth when Cfg.KernelSigma was 0.
	KernelKind  string  `json:"kernel_kind"`
	KernelSigma float64 `json:"kernel_sigma,omitempty"`
	// Xs are the candidate feature vectors of the kernel expansion
	// (Eqn 12) and Alpha their dual coefficients; Bias is b.
	Xs    []linalg.Vector `json:"xs"`
	Alpha linalg.Vector   `json:"alpha"`
	Bias  float64         `json:"bias"`
	// Diag preserves the training diagnostics for reporting.
	Diag Diagnostics `json:"diag"`
}

// Parts extracts the serializable state of the model.
func (m *Model) Parts() (ModelParts, error) {
	p := ModelParts{Cfg: m.cfg, Xs: m.xs, Alpha: m.alpha, Bias: m.bias, Diag: m.Diag}
	switch k := m.kern.(type) {
	case kernel.RBF:
		p.KernelKind, p.KernelSigma = KernelRBF, k.Sigma
	case kernel.Linear:
		p.KernelKind = KernelLinear
	default:
		return ModelParts{}, fmt.Errorf("core: kernel %s has no codec", m.kern.Name())
	}
	return p, nil
}

// ModelFromParts rebuilds a servable Model over any Source — a freshly
// systemized dataset (System) or a snapshot store restored from a bundle
// (Store). src must present the same feature space the model was trained
// on (same dataset, lexicons and feature config) for scores to be
// meaningful; with an identical source the restored model is bit-exact.
func ModelFromParts(src Source, p ModelParts) (*Model, error) {
	if src == nil {
		return nil, fmt.Errorf("core: ModelFromParts needs a source")
	}
	if len(p.Xs) == 0 {
		return nil, fmt.Errorf("core: model parts have no candidate vectors")
	}
	if len(p.Alpha) != len(p.Xs) {
		return nil, fmt.Errorf("core: %d dual coefficients for %d candidate vectors", len(p.Alpha), len(p.Xs))
	}
	var kern kernel.Func
	switch p.KernelKind {
	case KernelRBF:
		if p.KernelSigma <= 0 {
			return nil, fmt.Errorf("core: rbf model parts need a positive bandwidth, got %g", p.KernelSigma)
		}
		kern = kernel.NewRBF(p.KernelSigma)
	case KernelLinear:
		kern = kernel.Linear{}
	default:
		return nil, fmt.Errorf("core: unknown kernel kind %q", p.KernelKind)
	}
	m := &Model{src: src, cfg: p.Cfg, kern: kern, xs: p.Xs, alpha: p.Alpha, bias: p.Bias}
	m.Diag = p.Diag
	m.prepareServing()
	return m, nil
}

// ScoreBatchWorkers scores a batch of account pairs between two platforms
// through the batched serving fast path (see ScoreBatchInto): the batch
// is imputed into pooled feature rows, all kernel values are evaluated in
// one blocked pass over the packed support set, and α and the bias are
// folded per pair — bit-identical to per-pair Score at any worker count
// (≤ 0 = all cores). This is the serving hot path — a top-k query or an
// HTTP score batch lands here.
func (m *Model) ScoreBatchWorkers(pa platform.ID, pb platform.ID, pairs [][2]int, workers int) ([]float64, error) {
	out := make([]float64, len(pairs))
	if err := m.ScoreBatchInto(pa, pb, pairs, workers, out); err != nil {
		return nil, err
	}
	return out, nil
}
