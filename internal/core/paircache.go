package core

import (
	"sync"
	"sync/atomic"

	"hydra/internal/features"
	"hydra/internal/platform"
)

type pairKey struct {
	pa, pb platform.ID
	a, b   int
}

// pairCache is the mutex-guarded pair-vector memo shared by both Source
// halves. Cached vectors are pure memos of a deterministic computation,
// so eviction only ever costs a recompute — it never changes a result.
// The zero value is ready to use.
type pairCache struct {
	mu sync.Mutex
	m  map[pairKey]features.PairVector
	// cap, when positive, bounds the cache (see limit).
	cap int
	// hits/misses count lookups since process start — imputation health
	// for /metrics, atomic so stats reads never take the cache mutex.
	hits, misses atomic.Uint64
}

// lookup returns the cached vector for key, if present.
func (c *pairCache) lookup(key pairKey) (features.PairVector, bool) {
	c.mu.Lock()
	pv, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return pv, ok
}

// stats reports the lookup counters since process start.
func (c *pairCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// store memoizes one computed pair vector, evicting arbitrary entries
// first if a cap is set. When two goroutines race on an uncached pair
// both compute the same deterministic vector and one write wins.
func (c *pairCache) store(key pairKey, pv features.PairVector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[pairKey]features.PairVector)
	}
	if _, exists := c.m[key]; !exists {
		c.evictLocked(1)
	}
	c.m[key] = pv
}

// evictLocked drops arbitrary cache entries until inserting `incoming`
// new ones stays within the cap (no-op when uncapped).
func (c *pairCache) evictLocked(incoming int) {
	if c.cap <= 0 {
		return
	}
	for len(c.m) > c.cap-incoming {
		evicted := false
		for k := range c.m {
			delete(c.m, k)
			evicted = true
			break
		}
		if !evicted {
			return // cap smaller than incoming; nothing left to drop
		}
	}
}

// limit bounds the cache to at most n entries, trimming immediately if it
// is already larger (n ≤ 0 restores the default unbounded behavior).
func (c *pairCache) limit(n int) {
	c.mu.Lock()
	c.cap = n
	c.evictLocked(0)
	c.mu.Unlock()
}

// size reports the number of cached pair vectors.
func (c *pairCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
