// Package core implements HYDRA itself: the end-to-end linkage system of
// the paper. It wires the heterogeneous behavior model (internal/features),
// the structure-consistency graph (internal/structure) and the
// multi-objective dual solver (Eqns 13–17 via internal/qp) into Algorithm 1,
// with the two missing-data variants of Section 6.3: HYDRA-M (friend-based
// imputation, Eqn 18) and HYDRA-Z (zero fill).
package core

import (
	"fmt"
	"sort"
	"sync"

	"hydra/internal/attr"
	"hydra/internal/features"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// Variant selects the missing-feature treatment.
type Variant int

// The two variants evaluated in the paper's Figure 15.
const (
	// HydraM fills a missing feature with the average of the same feature
	// over the top-3 interacting friends on each side (Eqn 18).
	HydraM Variant = iota
	// HydraZ fills missing features with zeros (the degenerate baseline).
	HydraZ
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == HydraM {
		return "HYDRA-M"
	}
	return "HYDRA-Z"
}

// System holds the trained feature pipeline and per-account views for one
// dataset, with caching for pair vectors. It is shared by HYDRA and the
// feature-based baselines so every method sees identical features. The
// view and pair caches are mutex-guarded, so a System is safe for
// concurrent use — the parallel feature assembly, evaluation and
// experiment sweeps all share one instance.
type System struct {
	DS   *platform.Dataset
	Pipe *features.Pipeline

	mu        sync.Mutex
	views     map[platform.ID][]*features.AccountView
	pairCache map[pairKey]features.PairVector
	// pairCacheCap, when positive, bounds pairCache (see LimitPairCache).
	pairCacheCap int
	faces        *vision.Matcher
	seed         int64
}

type pairKey struct {
	pa, pb platform.ID
	a, b   int
}

// NewSystem builds the pipeline (attribute importance from the provided
// labeled profile pairs, LDA over the corpus) and prepares lazy view
// construction.
func NewSystem(ds *platform.Dataset, labeled []attr.LabeledPair, lx features.Lexicons, cfg features.Config) (*System, error) {
	pipe, err := features.NewPipeline(ds, labeled, lx, cfg)
	if err != nil {
		return nil, err
	}
	return &System{
		DS:        ds,
		Pipe:      pipe,
		views:     make(map[platform.ID][]*features.AccountView),
		pairCache: make(map[pairKey]features.PairVector),
		faces:     vision.NewMatcher(cfg.Seed),
		seed:      cfg.Seed,
	}, nil
}

// Faces exposes the simulated face matcher (blocking uses it).
func (s *System) Faces() *vision.Matcher { return s.faces }

// Views returns (building on first use) the account views of a platform.
// The build happens under the cache lock so concurrent callers get the
// same slice and each view is constructed exactly once.
func (s *System) Views(id platform.ID) ([]*features.AccountView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewsLocked(id)
}

func (s *System) viewsLocked(id platform.ID) ([]*features.AccountView, error) {
	if v, ok := s.views[id]; ok {
		return v, nil
	}
	p, err := s.DS.Platform(id)
	if err != nil {
		return nil, err
	}
	views := make([]*features.AccountView, p.NumAccounts())
	for i, acc := range p.Accounts {
		views[i] = s.Pipe.BuildView(acc)
	}
	s.views[id] = views
	return views, nil
}

// Embeddings returns the behavior embeddings x_i of all accounts on a
// platform, indexed by local id.
func (s *System) Embeddings(id platform.ID) ([]linalg.Vector, error) {
	views, err := s.Views(id)
	if err != nil {
		return nil, err
	}
	out := make([]linalg.Vector, len(views))
	for i, v := range views {
		out[i] = v.Embedding
	}
	return out, nil
}

// RawPair returns the (cached) unimputed pair vector between account a on
// platform pa and account b on platform pb. The similarity computation
// itself runs outside the lock; when two goroutines race on an uncached
// pair both compute the same deterministic vector and one write wins.
func (s *System) RawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error) {
	key := pairKey{pa, pb, a, b}
	s.mu.Lock()
	if pv, ok := s.pairCache[key]; ok {
		s.mu.Unlock()
		return pv, nil
	}
	va, err := s.viewsLocked(pa)
	if err != nil {
		s.mu.Unlock()
		return features.PairVector{}, err
	}
	vb, err := s.viewsLocked(pb)
	if err != nil {
		s.mu.Unlock()
		return features.PairVector{}, err
	}
	s.mu.Unlock()
	if a < 0 || a >= len(va) || b < 0 || b >= len(vb) {
		return features.PairVector{}, fmt.Errorf("core: pair (%d,%d) out of range (%s has %d, %s has %d)",
			a, b, pa, len(va), pb, len(vb))
	}
	pv := s.Pipe.Pair(va[a], vb[b])
	s.mu.Lock()
	if _, exists := s.pairCache[key]; !exists {
		s.evictPairsLocked(1)
	}
	s.pairCache[key] = pv
	s.mu.Unlock()
	return pv, nil
}

// evictPairsLocked drops arbitrary cache entries until inserting `incoming`
// new ones stays within the cap (no-op when uncapped). Cached vectors are
// pure memos of a deterministic computation, so which entries go only
// costs a possible recompute — it never changes any result.
func (s *System) evictPairsLocked(incoming int) {
	if s.pairCacheCap <= 0 {
		return
	}
	for len(s.pairCache) > s.pairCacheCap-incoming {
		evicted := false
		for k := range s.pairCache {
			delete(s.pairCache, k)
			evicted = true
			break
		}
		if !evicted {
			return // cap smaller than incoming; nothing left to drop
		}
	}
}

// LimitPairCache bounds the pair-vector cache to at most n entries,
// trimming immediately if it is already larger (n ≤ 0 restores the
// default unbounded behavior). One-shot batch runs touch each pair a
// bounded number of times and want everything cached, but a long-lived
// serving process answering arbitrary queries would otherwise grow the
// cache monotonically until OOM — the serve engine caps it at startup.
// Eviction is arbitrary-entry, and correctness never depends on cache
// contents.
func (s *System) LimitPairCache(n int) {
	s.mu.Lock()
	s.pairCacheCap = n
	s.evictPairsLocked(0)
	s.mu.Unlock()
}

// Impute returns the pair vector with missing dimensions filled according
// to the variant. topFriends is the core-structure size (the paper uses the
// top-3 most-interacting friends on each side); when fewer friends exist
// the average runs over the pairs that do (the natural generalization of
// Eqn 18's fixed /9).
func (s *System) Impute(pa platform.ID, a int, pb platform.ID, b int, v Variant, topFriends int) (linalg.Vector, error) {
	pv, err := s.RawPair(pa, a, pb, b)
	if err != nil {
		return nil, err
	}
	x := pv.X.Clone()
	if v == HydraZ {
		return x, nil // missing dims are already zero
	}
	missing := false
	for _, m := range pv.Mask {
		if !m {
			missing = true
			break
		}
	}
	if !missing {
		return x, nil
	}
	if topFriends <= 0 {
		topFriends = 3
	}
	platA, err := s.DS.Platform(pa)
	if err != nil {
		return nil, err
	}
	platB, err := s.DS.Platform(pb)
	if err != nil {
		return nil, err
	}
	friendsA := platA.Graph.TopFriends(a, topFriends)
	friendsB := platB.Graph.TopFriends(b, topFriends)
	if len(friendsA) == 0 || len(friendsB) == 0 {
		return x, nil // no social context: fall back to zeros
	}
	// Average the friends' cross-pair similarity per missing dimension
	// (Eqn 18); friend pairs missing the dimension contribute zero, as the
	// paper prescribes.
	dim := len(x)
	sums := linalg.NewVector(dim)
	count := float64(len(friendsA) * len(friendsB))
	for _, fa := range friendsA {
		for _, fb := range friendsB {
			fpv, err := s.RawPair(pa, fa.ID, pb, fb.ID)
			if err != nil {
				return nil, err
			}
			for d := range sums {
				if fpv.Mask[d] {
					sums[d] += fpv.X[d]
				}
			}
		}
	}
	for d := range x {
		if !pv.Mask[d] {
			x[d] = sums[d] / count
		}
	}
	return x, nil
}

// CacheSize reports the number of cached pair vectors (diagnostics).
func (s *System) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pairCache)
}

// LabeledProfilePairs assembles attribute-importance training pairs from
// ground truth: for the given persons, the true cross-platform profile pair
// (positive) and one shifted mismatch (negative). This plays the role of
// the paper's user-provided cross-login label collection.
func LabeledProfilePairs(ds *platform.Dataset, pa, pb platform.ID, persons []int) []attr.LabeledPair {
	platA := ds.Platforms[pa]
	platB := ds.Platforms[pb]
	if platA == nil || platB == nil {
		return nil
	}
	sorted := append([]int(nil), persons...)
	sort.Ints(sorted)
	var out []attr.LabeledPair
	for i, person := range sorted {
		la, okA := ds.AccountOf(person, pa)
		lb, okB := ds.AccountOf(person, pb)
		if !okA || !okB {
			continue
		}
		out = append(out, attr.LabeledPair{
			A:        &platA.Accounts[la].Profile,
			B:        &platB.Accounts[lb].Profile,
			Positive: true,
		})
		// Negative: pair with the next person's account on pb.
		other := sorted[(i+1)%len(sorted)]
		if other == person {
			continue
		}
		if lbNeg, ok := ds.AccountOf(other, pb); ok {
			out = append(out, attr.LabeledPair{
				A:        &platA.Accounts[la].Profile,
				B:        &platB.Accounts[lbNeg].Profile,
				Positive: false,
			})
		}
	}
	return out
}
