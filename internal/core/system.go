// Package core implements HYDRA itself: the end-to-end linkage system of
// the paper. It wires the heterogeneous behavior model (internal/features),
// the structure-consistency graph (internal/structure) and the
// multi-objective dual solver (Eqns 13–17 via internal/qp) into Algorithm 1,
// with the two missing-data variants of Section 6.3: HYDRA-M (friend-based
// imputation, Eqn 18) and HYDRA-Z (zero fill).
package core

import (
	"sort"
	"sync"

	"hydra/internal/attr"
	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// Variant selects the missing-feature treatment.
type Variant int

// The two variants evaluated in the paper's Figure 15.
const (
	// HydraM fills a missing feature with the average of the same feature
	// over the top-3 interacting friends on each side (Eqn 18).
	HydraM Variant = iota
	// HydraZ fills missing features with zeros (the degenerate baseline).
	HydraZ
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == HydraM {
		return "HYDRA-M"
	}
	return "HYDRA-Z"
}

// System is the dataset-backed half of the Source split: the trained
// feature pipeline over a raw dataset, building per-account views lazily
// and imputing through the live interaction graph. It is what training
// runs against; a Store answers the same Source contract from a snapshot
// with no dataset. The view and pair caches are mutex-guarded, so a
// System is safe for concurrent use — the parallel feature assembly,
// evaluation and experiment sweeps all share one instance.
type System struct {
	DS   *platform.Dataset
	Pipe *features.Pipeline

	mu    sync.Mutex
	views map[platform.ID][]*features.AccountView
	pairs pairCache
	faces *vision.Matcher
	seed  int64
}

var _ Source = (*System)(nil)

// NewSystem builds the pipeline (attribute importance from the provided
// labeled profile pairs, LDA over the corpus) and prepares lazy view
// construction.
func NewSystem(ds *platform.Dataset, labeled []attr.LabeledPair, lx features.Lexicons, cfg features.Config) (*System, error) {
	pipe, err := features.NewPipeline(ds, labeled, lx, cfg)
	if err != nil {
		return nil, err
	}
	return &System{
		DS:    ds,
		Pipe:  pipe,
		views: make(map[platform.ID][]*features.AccountView),
		faces: vision.NewMatcher(cfg.Seed),
		seed:  cfg.Seed,
	}, nil
}

// Faces exposes the simulated face matcher (blocking uses it).
func (s *System) Faces() *vision.Matcher { return s.faces }

// Views returns (building on first use) the account views of a platform.
// The build happens under the cache lock so concurrent callers get the
// same slice and each view is constructed exactly once.
func (s *System) Views(id platform.ID) ([]*features.AccountView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewsLocked(id)
}

func (s *System) viewsLocked(id platform.ID) ([]*features.AccountView, error) {
	if v, ok := s.views[id]; ok {
		return v, nil
	}
	p, err := s.DS.Platform(id)
	if err != nil {
		return nil, err
	}
	views := make([]*features.AccountView, p.NumAccounts())
	for i, acc := range p.Accounts {
		views[i] = s.Pipe.BuildView(acc)
	}
	s.views[id] = views
	return views, nil
}

// Embeddings returns the behavior embeddings x_i of all accounts on a
// platform, indexed by local id.
func (s *System) Embeddings(id platform.ID) ([]linalg.Vector, error) {
	views, err := s.Views(id)
	if err != nil {
		return nil, err
	}
	out := make([]linalg.Vector, len(views))
	for i, v := range views {
		out[i] = v.Embedding
	}
	return out, nil
}

// RawPair returns the (cached) unimputed pair vector between account a on
// platform pa and account b on platform pb. The similarity computation
// itself runs outside the lock; when two goroutines race on an uncached
// pair both compute the same deterministic vector and one write wins.
func (s *System) RawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error) {
	key := pairKey{pa, pb, a, b}
	if pv, ok := s.pairs.lookup(key); ok {
		return pv, nil
	}
	s.mu.Lock()
	va, err := s.viewsLocked(pa)
	if err != nil {
		s.mu.Unlock()
		return features.PairVector{}, err
	}
	vb, err := s.viewsLocked(pb)
	if err != nil {
		s.mu.Unlock()
		return features.PairVector{}, err
	}
	s.mu.Unlock()
	if err := checkPairRange(pa, a, pb, b, va, vb); err != nil {
		return features.PairVector{}, err
	}
	pv := s.Pipe.Pair(va[a], vb[b])
	s.pairs.store(key, pv)
	return pv, nil
}

// LimitPairCache bounds the pair-vector cache to at most n entries,
// trimming immediately if it is already larger (n ≤ 0 restores the
// default unbounded behavior). One-shot batch runs touch each pair a
// bounded number of times and want everything cached, but a long-lived
// serving process answering arbitrary queries would otherwise grow the
// cache monotonically until OOM — the serve engine caps it at startup.
// Eviction is arbitrary-entry, and correctness never depends on cache
// contents.
func (s *System) LimitPairCache(n int) { s.pairs.limit(n) }

// Impute returns the pair vector with missing dimensions filled according
// to the variant, resolving friends through the live interaction graph
// (see imputePairInto for the shared Eqn-18 implementation).
func (s *System) Impute(pa platform.ID, a int, pb platform.ID, b int, v Variant, topFriends int) (linalg.Vector, error) {
	return imputePair(s, nil, pa, a, pb, b, v, topFriends)
}

// Friends reads the top-k most-interacting friends off the dataset's
// live interaction graph.
func (s *System) Friends(id platform.ID, local, k int) ([]graph.Friend, error) {
	p, err := s.DS.Platform(id)
	if err != nil {
		return nil, err
	}
	return p.Graph.TopFriends(local, k), nil
}

// CacheSize reports the number of cached pair vectors (diagnostics).
func (s *System) CacheSize() int { return s.pairs.size() }

// PairCacheStats reports the pair-cache hit/miss counters since process
// start (imputation health for /metrics).
func (s *System) PairCacheStats() (hits, misses uint64) { return s.pairs.stats() }

// LabeledProfilePairs assembles attribute-importance training pairs from
// ground truth: for the given persons, the true cross-platform profile pair
// (positive) and one shifted mismatch (negative). This plays the role of
// the paper's user-provided cross-login label collection.
func LabeledProfilePairs(ds *platform.Dataset, pa, pb platform.ID, persons []int) []attr.LabeledPair {
	platA := ds.Platforms[pa]
	platB := ds.Platforms[pb]
	if platA == nil || platB == nil {
		return nil
	}
	sorted := append([]int(nil), persons...)
	sort.Ints(sorted)
	var out []attr.LabeledPair
	for i, person := range sorted {
		la, okA := ds.AccountOf(person, pa)
		lb, okB := ds.AccountOf(person, pb)
		if !okA || !okB {
			continue
		}
		out = append(out, attr.LabeledPair{
			A:        &platA.Accounts[la].Profile,
			B:        &platB.Accounts[lb].Profile,
			Positive: true,
		})
		// Negative: pair with the next person's account on pb.
		other := sorted[(i+1)%len(sorted)]
		if other == person {
			continue
		}
		if lbNeg, ok := ds.AccountOf(other, pb); ok {
			out = append(out, attr.LabeledPair{
				A:        &platA.Accounts[la].Profile,
				B:        &platB.Accounts[lbNeg].Profile,
				Positive: false,
			})
		}
	}
	return out
}
