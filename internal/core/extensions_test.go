package core

import (
	"testing"

	"hydra/internal/platform"
)

func TestEigenLinkerUnsupervised(t *testing.T) {
	_, sys := buildSystem(t, 60, platform.EnglishPlatforms, 9)
	// Task with zero labels: only EigenLinker can handle this.
	task := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0, NegPerPos: 0, UsePreMatched: false, Seed: 9})
	linker := &EigenLinker{Cfg: DefaultConfig(9)}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	conf, err := EvaluateLinker(sys, linker, task.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Unsupervised precision should be solid even if recall is partial.
	if conf.TP == 0 {
		t.Fatalf("eigen linker found nothing: %s", conf)
	}
	if conf.Precision() < 0.5 {
		t.Fatalf("eigen linker precision = %v: %s", conf.Precision(), conf)
	}
}

func TestEigenLinkerUnknownPair(t *testing.T) {
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, 10)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0, Seed: 10})
	linker := &EigenLinker{Cfg: DefaultConfig(10), Threshold: 0.4}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	// A pair that was never a candidate must score below zero.
	s, err := linker.PairScore(platform.Twitter, 0, platform.Facebook, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range task.Blocks[0].Cands {
		if c.A == 0 && c.B == 1 {
			found = true
		}
	}
	if !found && s != -0.4 {
		t.Fatalf("unknown pair score = %v, want -0.4", s)
	}
}

func TestEigenLinkerUnfitted(t *testing.T) {
	l := &EigenLinker{}
	if _, err := l.PairScore(platform.Twitter, 0, platform.Facebook, 0); err == nil {
		t.Fatal("expected unfitted error")
	}
}

func TestLinearLinkerADMM(t *testing.T) {
	_, sys := buildSystem(t, 50, platform.EnglishPlatforms, 11)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(11))
	linker := &LinearLinker{Shards: 4, Lambda: 1, Variant: HydraM}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	m := linker.Model()
	if m == nil || len(m.W) == 0 {
		t.Fatal("no model")
	}
	if m.Diag.Iters == 0 {
		t.Fatal("ADMM did not iterate")
	}
	conf, err := EvaluateLinker(sys, linker, task.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if conf.F1() < 0.5 {
		t.Fatalf("linear ADMM model F1 = %v: %s", conf.F1(), conf)
	}
}

func TestLinearLinkerShardInvariance(t *testing.T) {
	_, sys := buildSystem(t, 40, platform.EnglishPlatforms, 12)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(12))
	fit := func(shards int) *LinearModel {
		l := &LinearLinker{Shards: shards, Lambda: 1}
		if err := l.Fit(sys, task); err != nil {
			t.Fatal(err)
		}
		return l.Model()
	}
	m1 := fit(1)
	m5 := fit(5)
	// ADMM converges linearly; within the iteration budget the consensus
	// solutions must agree to a few percent relative error.
	if m1.W.Sub(m5.W).Norm() > 0.08*(1+m1.W.Norm()) {
		t.Fatalf("consensus depends on shard count: Δ=%v", m1.W.Sub(m5.W).Norm())
	}
}

func TestLinearLinkerValidation(t *testing.T) {
	l := &LinearLinker{}
	if _, err := l.PairScore(platform.Twitter, 0, platform.Facebook, 0); err == nil {
		t.Fatal("expected unfitted error")
	}
	if err := l.Fit(nil, &Task{}); err == nil {
		t.Fatal("expected no-labels error")
	}
	if l.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestTuneThreshold(t *testing.T) {
	_, sys := buildSystem(t, 50, platform.EnglishPlatforms, 13)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(13))
	linker := &HydraLinker{Cfg: DefaultConfig(13)}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	thr, err := TuneThreshold(sys, linker, task)
	if err != nil {
		t.Fatal(err)
	}
	// The tuned threshold must be finite and in a plausible score range.
	if thr < -5 || thr > 5 {
		t.Fatalf("threshold = %v out of range", thr)
	}
}

func TestTuneThresholdValidation(t *testing.T) {
	_, sys := buildSystem(t, 20, platform.EnglishPlatforms, 14)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0, Seed: 14})
	linker := &EigenLinker{Cfg: DefaultConfig(14)}
	if err := linker.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	if _, err := TuneThreshold(sys, linker, task); err == nil {
		t.Fatal("expected error without labels")
	}
}
