package core

import (
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/platform"
)

// TestTrainWorkersDeterminism asserts the end-to-end tentpole contract:
// blocking, feature assembly, the Gram matrix, training and evaluation all
// produce identical results with Workers: 1 and Workers: N for a fixed
// seed. Every parallel path keeps RNG state per task and writes to
// index-addressed slots, so this holds bit-for-bit, not just
// approximately.
func TestTrainWorkersDeterminism(t *testing.T) {
	const seed = 4
	_, sys1 := buildSystem(t, 50, platform.EnglishPlatforms, seed)
	_, sysN := buildSystem(t, 50, platform.EnglishPlatforms, seed)

	buildWith := func(sys *System, workers int) (*Task, *Model, Config) {
		t.Helper()
		rules := blocking.DefaultRules()
		rules.Workers = workers
		block, err := BuildBlock(sys, platform.Twitter, platform.Facebook, rules, DefaultLabelOpts(seed))
		if err != nil {
			t.Fatal(err)
		}
		task := &Task{Blocks: []*Block{block}}
		cfg := DefaultConfig(seed)
		cfg.Workers = workers
		m, err := Train(sys, task, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return task, m, cfg
	}

	task1, m1, cfg1 := buildWith(sys1, 1)
	taskN, mN, cfgN := buildWith(sysN, 4)

	// Identical candidate sets and labels.
	b1, bN := task1.Blocks[0], taskN.Blocks[0]
	if len(b1.Cands) != len(bN.Cands) {
		t.Fatalf("candidate count differs: %d vs %d", len(b1.Cands), len(bN.Cands))
	}
	for i := range b1.Cands {
		if b1.Cands[i] != bN.Cands[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, b1.Cands[i], bN.Cands[i])
		}
	}
	if len(b1.Labels) != len(bN.Labels) {
		t.Fatalf("label count differs: %d vs %d", len(b1.Labels), len(bN.Labels))
	}
	for i, y := range b1.Labels {
		if bN.Labels[i] != y {
			t.Fatalf("label %d differs: %g vs %g", i, bN.Labels[i], y)
		}
	}

	// Identical dual solutions.
	if len(m1.alpha) != len(mN.alpha) {
		t.Fatalf("alpha length differs: %d vs %d", len(m1.alpha), len(mN.alpha))
	}
	for i := range m1.alpha {
		if m1.alpha[i] != mN.alpha[i] {
			t.Fatalf("alpha[%d] differs: %v vs %v", i, m1.alpha[i], mN.alpha[i])
		}
	}
	if m1.bias != mN.bias {
		t.Fatalf("bias differs: %v vs %v", m1.bias, mN.bias)
	}

	// Identical confusion counts from the parallel evaluator.
	l1 := &HydraLinker{Cfg: cfg1, model: m1}
	lN := &HydraLinker{Cfg: cfgN, model: mN}
	conf1, err := EvaluateLinkerWorkers(sys1, l1, task1.Blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	confN, err := EvaluateLinkerWorkers(sysN, lN, taskN.Blocks, 4)
	if err != nil {
		t.Fatal(err)
	}
	if conf1 != confN {
		t.Fatalf("confusion differs: %+v vs %+v", conf1, confN)
	}
}

// TestSystemConcurrentRawPair exercises the System caches from many
// goroutines (run with -race to catch regressions in the locking).
func TestSystemConcurrentRawPair(t *testing.T) {
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, 2)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				if _, err := sys.RawPair(platform.Twitter, (g+i)%20, platform.Facebook, i%20); err != nil {
					done <- err
					return
				}
				if _, err := sys.Impute(platform.Twitter, i%20, platform.Facebook, (g*3+i)%20, HydraM, 3); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
