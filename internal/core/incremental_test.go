package core

import (
	"testing"

	"hydra/internal/platform"
)

func TestTrainIncrementalWarmStart(t *testing.T) {
	_, sys := buildSystem(t, 60, platform.EnglishPlatforms, 21)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(21))
	cfg := DefaultConfig(21)

	cold, err := Train(sys, task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.dual == nil || len(cold.dual.beta) == 0 {
		t.Fatal("cold model did not remember its dual")
	}

	// Retrain on the identical task: the warm start should converge in
	// fewer SMO iterations than the cold start did.
	warm, err := TrainIncremental(sys, cold, task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Diag.SMOIters >= cold.Diag.SMOIters {
		t.Fatalf("warm start took %d iters, cold took %d", warm.Diag.SMOIters, cold.Diag.SMOIters)
	}
	// Quality must be preserved.
	confCold, err := EvaluateLinker(sys, &HydraLinker{Cfg: cfg, model: cold}, task.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	confWarm, err := EvaluateLinker(sys, &HydraLinker{Cfg: cfg, model: warm}, task.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if confWarm.F1() < confCold.F1()-0.05 {
		t.Fatalf("warm-start model degraded: %v vs %v", confWarm.F1(), confCold.F1())
	}
}

func TestTrainIncrementalGrownTask(t *testing.T) {
	_, sys := buildSystem(t, 60, platform.EnglishPlatforms, 22)
	small := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0.2, NegPerPos: 2, UsePreMatched: false, Seed: 22})
	big := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0.4, NegPerPos: 2, UsePreMatched: false, Seed: 22})
	cfg := DefaultConfig(22)

	prev, err := Train(sys, small, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Training the grown task from the previous model must work and score
	// at least as well as the smaller model did.
	grown, err := TrainIncremental(sys, prev, big, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := EvaluateLinker(sys, &HydraLinker{Cfg: cfg, model: grown}, big.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if conf.F1() < 0.5 {
		t.Fatalf("incremental model on grown task F1 = %v", conf.F1())
	}
}

func TestTrainIncrementalNilPrev(t *testing.T) {
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, 23)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(23))
	m, err := TrainIncremental(sys, nil, task, DefaultConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil model")
	}
}

func TestWarmStartVectorProjection(t *testing.T) {
	keys := []labelKey{
		{platform.Twitter, platform.Facebook, 0, 0},
		{platform.Twitter, platform.Facebook, 1, 1},
	}
	labels := []float64{1, -1}
	warm := map[labelKey]float64{
		keys[0]: 0.8,
		keys[1]: 0.4,
	}
	beta := warmStartVector(nil, labels, keys, 0.5, warm)
	if beta == nil {
		t.Fatal("expected a warm vector")
	}
	// Box clip at 0.5 and rebalance: positive side 0.5, negative 0.4 →
	// positive scaled to 0.4.
	var eq float64
	for i, y := range labels {
		if beta[i] < 0 || beta[i] > 0.5 {
			t.Fatalf("beta[%d] = %v out of box", i, beta[i])
		}
		eq += y * beta[i]
	}
	if eq > 1e-12 || eq < -1e-12 {
		t.Fatalf("yᵀβ = %v after projection", eq)
	}
}

func TestWarmStartVectorDegenerate(t *testing.T) {
	if warmStartVector(nil, nil, nil, 1, nil) != nil {
		t.Fatal("empty warm map should give nil")
	}
	keys := []labelKey{{platform.Twitter, platform.Facebook, 0, 0}}
	// Only a positive-side value: cannot balance, degrade to cold start.
	beta := warmStartVector(nil, []float64{1}, keys, 1,
		map[labelKey]float64{keys[0]: 0.5})
	if beta != nil {
		t.Fatal("unbalanceable warm start should degrade to nil")
	}
	// Carried values that clip to zero also degrade.
	beta = warmStartVector(nil, []float64{1}, keys, 1,
		map[labelKey]float64{{platform.Twitter, platform.Facebook, 9, 9}: 0.5})
	if beta != nil {
		t.Fatal("no-overlap warm start should degrade to nil")
	}
}
