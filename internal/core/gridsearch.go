package core

import (
	"fmt"

	"hydra/internal/parallel"
)

// GridSearch is the validation-set parameter tuning of the paper's Section
// 7.1 ("the parameters ... are tuned by a grid search procedure to maximize
// the performance ... on the validation set"): it trains HYDRA at every
// (γ_L, γ_M, p) grid point on trainTask and keeps the configuration with
// the best F1 on valTask's labeled pairs.

// GridPoint is one evaluated configuration.
type GridPoint struct {
	GammaL, GammaM, P float64
	F1                float64
	Err               error
}

// GridResult is the full sweep outcome.
type GridResult struct {
	Best   Config
	BestF1 float64
	Points []GridPoint
}

// GridSearch sweeps the grids and returns the best configuration. base
// supplies all non-swept parameters, including Workers: the independent
// grid points train concurrently on that pool, and — like the figure
// sweeps — once the grid's own fan-out covers the pool the hot paths
// inside each point pin to one worker (nested pools only multiply
// goroutines and concurrently resident Gram matrices). Points are
// reported in grid order and ties resolve to the earlier point, exactly
// as in the sequential sweep; every path is deterministic, so the result
// is identical at any worker count. Points that fail to train are
// recorded with their error and skipped.
func GridSearch(sys *System, trainTask, valTask *Task, base Config,
	gammaLs, gammaMs, ps []float64) (*GridResult, error) {

	if len(gammaLs) == 0 || len(gammaMs) == 0 || len(ps) == 0 {
		return nil, fmt.Errorf("core: empty grid")
	}
	type coord struct{ gl, gm, p float64 }
	coords := make([]coord, 0, len(gammaLs)*len(gammaMs)*len(ps))
	for _, gl := range gammaLs {
		for _, gm := range gammaMs {
			for _, p := range ps {
				coords = append(coords, coord{gl, gm, p})
			}
		}
	}
	// Split the worker budget between the point fan-out and the hot paths
	// inside each point (see parallel.Inner), bounding both the effective
	// parallelism and the number of concurrently resident Gram matrices.
	inner := parallel.Inner(len(coords), base.Workers)
	points := parallel.Map(base.Workers, len(coords), func(i int) GridPoint {
		c := coords[i]
		cfg := base
		cfg.GammaL, cfg.GammaM, cfg.P = c.gl, c.gm, c.p
		cfg.Workers = inner
		pt := GridPoint{GammaL: c.gl, GammaM: c.gm, P: c.p}
		m, err := Train(sys, trainTask, cfg)
		if err != nil {
			pt.Err = err
			return pt
		}
		f1, err := labeledF1(sys, &HydraLinker{Cfg: cfg, model: m}, valTask)
		if err != nil {
			pt.Err = err
			return pt
		}
		pt.F1 = f1
		return pt
	})
	res := &GridResult{BestF1: -1, Points: points}
	for i, pt := range points {
		if pt.Err != nil || pt.F1 <= res.BestF1 {
			continue
		}
		res.BestF1 = pt.F1
		cfg := base // Best keeps the caller's Workers, not the inner pin
		cfg.GammaL, cfg.GammaM, cfg.P = coords[i].gl, coords[i].gm, coords[i].p
		res.Best = cfg
	}
	if res.BestF1 < 0 {
		return nil, fmt.Errorf("core: every grid point failed")
	}
	return res, nil
}

// labeledF1 scores the linker's decisions against the task's labeled pairs
// (the validation criterion).
func labeledF1(sys *System, l Linker, task *Task) (float64, error) {
	tp, fp, fn := 0, 0, 0
	seen := 0
	for _, b := range task.Blocks {
		for _, ci := range b.SortedLabelIndices() {
			c := b.Cands[ci]
			s, err := l.PairScore(b.PA, c.A, b.PB, c.B)
			if err != nil {
				return 0, err
			}
			seen++
			linked := s > 0
			truth := b.Labels[ci] > 0
			switch {
			case linked && truth:
				tp++
			case linked && !truth:
				fp++
			case !linked && truth:
				fn++
			}
		}
	}
	if seen == 0 {
		return 0, fmt.Errorf("core: validation task has no labeled pairs")
	}
	if tp == 0 {
		return 0, nil
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec), nil
}
