package core

import (
	"fmt"
)

// GridSearch is the validation-set parameter tuning of the paper's Section
// 7.1 ("the parameters ... are tuned by a grid search procedure to maximize
// the performance ... on the validation set"): it trains HYDRA at every
// (γ_L, γ_M, p) grid point on trainTask and keeps the configuration with
// the best F1 on valTask's labeled pairs.

// GridPoint is one evaluated configuration.
type GridPoint struct {
	GammaL, GammaM, P float64
	F1                float64
	Err               error
}

// GridResult is the full sweep outcome.
type GridResult struct {
	Best   Config
	BestF1 float64
	Points []GridPoint
}

// GridSearch sweeps the grids and returns the best configuration. base
// supplies all non-swept parameters. Points that fail to train are recorded
// with their error and skipped.
func GridSearch(sys *System, trainTask, valTask *Task, base Config,
	gammaLs, gammaMs, ps []float64) (*GridResult, error) {

	if len(gammaLs) == 0 || len(gammaMs) == 0 || len(ps) == 0 {
		return nil, fmt.Errorf("core: empty grid")
	}
	res := &GridResult{BestF1: -1}
	for _, gl := range gammaLs {
		for _, gm := range gammaMs {
			for _, p := range ps {
				cfg := base
				cfg.GammaL, cfg.GammaM, cfg.P = gl, gm, p
				pt := GridPoint{GammaL: gl, GammaM: gm, P: p}
				m, err := Train(sys, trainTask, cfg)
				if err != nil {
					pt.Err = err
					res.Points = append(res.Points, pt)
					continue
				}
				f1, err := labeledF1(sys, &HydraLinker{Cfg: cfg, model: m}, valTask)
				if err != nil {
					pt.Err = err
					res.Points = append(res.Points, pt)
					continue
				}
				pt.F1 = f1
				res.Points = append(res.Points, pt)
				if f1 > res.BestF1 {
					res.BestF1 = f1
					res.Best = cfg
				}
			}
		}
	}
	if res.BestF1 < 0 {
		return nil, fmt.Errorf("core: every grid point failed")
	}
	return res, nil
}

// labeledF1 scores the linker's decisions against the task's labeled pairs
// (the validation criterion).
func labeledF1(sys *System, l Linker, task *Task) (float64, error) {
	tp, fp, fn := 0, 0, 0
	seen := 0
	for _, b := range task.Blocks {
		for _, ci := range b.SortedLabelIndices() {
			c := b.Cands[ci]
			s, err := l.PairScore(b.PA, c.A, b.PB, c.B)
			if err != nil {
				return 0, err
			}
			seen++
			linked := s > 0
			truth := b.Labels[ci] > 0
			switch {
			case linked && truth:
				tp++
			case linked && !truth:
				fp++
			case !linked && truth:
				fn++
			}
		}
	}
	if seen == 0 {
		return 0, fmt.Errorf("core: validation task has no labeled pairs")
	}
	if tp == 0 {
		return 0, nil
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec), nil
}
