package core

import (
	"encoding/json"
	"testing"

	"hydra/internal/platform"
)

// TestModelCodecRoundTrip trains a model, reduces it to ModelParts,
// round-trips the parts through JSON, rebuilds the model and asserts
// bit-identical Score/Link on every candidate pair — the core half of the
// artifact round-trip contract.
func TestModelCodecRoundTrip(t *testing.T) {
	const seed = 2
	_, sys := buildSystem(t, 40, platform.EnglishPlatforms, seed)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(seed))
	m, err := Train(sys, task, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}

	parts, err := m.Parts()
	if err != nil {
		t.Fatal(err)
	}
	if parts.KernelKind != KernelRBF || parts.KernelSigma <= 0 {
		t.Fatalf("expected rbf parts with learned bandwidth, got %q σ=%g", parts.KernelKind, parts.KernelSigma)
	}
	blob, err := json.Marshal(parts)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ModelParts
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	m2, err := ModelFromParts(sys, decoded)
	if err != nil {
		t.Fatal(err)
	}

	b := task.Blocks[0]
	for _, c := range b.Cands {
		s1, err := m.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := m2.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 {
			t.Fatalf("score differs for (%d,%d): %v vs %v", c.A, c.B, s1, s2)
		}
		l1, _ := m.Link(b.PA, c.A, b.PB, c.B)
		l2, _ := m2.Link(b.PA, c.A, b.PB, c.B)
		if l1 != l2 {
			t.Fatalf("link decision differs for (%d,%d)", c.A, c.B)
		}
	}
}

// TestModelFromPartsValidation asserts the codec rejects inconsistent or
// unknown parts instead of serving garbage.
func TestModelFromPartsValidation(t *testing.T) {
	const seed = 2
	_, sys := buildSystem(t, 20, platform.EnglishPlatforms, seed)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(seed))
	m, err := Train(sys, task, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := m.Parts()
	if err != nil {
		t.Fatal(err)
	}

	bad := parts
	bad.KernelKind = "spline"
	if _, err := ModelFromParts(sys, bad); err == nil {
		t.Fatal("expected error for unknown kernel kind")
	}
	bad = parts
	bad.Alpha = bad.Alpha[:len(bad.Alpha)-1]
	if _, err := ModelFromParts(sys, bad); err == nil {
		t.Fatal("expected error for alpha/xs length mismatch")
	}
	bad = parts
	bad.KernelSigma = 0
	if _, err := ModelFromParts(sys, bad); err == nil {
		t.Fatal("expected error for zero rbf bandwidth")
	}
	if _, err := ModelFromParts(nil, parts); err == nil {
		t.Fatal("expected error for nil system")
	}
}

// TestLimitPairCacheBoundsAndPreservesScores asserts the serve-side cache
// cap keeps the pair cache bounded without changing a single score.
func TestLimitPairCacheBoundsAndPreservesScores(t *testing.T) {
	const seed = 6
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, seed)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(seed))
	m, err := Train(sys, task, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	b := task.Blocks[0]
	want := make([]float64, len(b.Cands))
	for i, c := range b.Cands {
		if want[i], err = m.Score(b.PA, c.A, b.PB, c.B); err != nil {
			t.Fatal(err)
		}
	}

	const cap = 16
	sys.LimitPairCache(cap)
	for round := 0; round < 2; round++ {
		for i, c := range b.Cands {
			got, err := m.Score(b.PA, c.A, b.PB, c.B)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[i] {
				t.Fatalf("round %d: capped-cache score %d differs: %v vs %v", round, i, got, want[i])
			}
			if n := sys.CacheSize(); n > cap {
				t.Fatalf("cache grew to %d entries past the cap %d", n, cap)
			}
		}
	}
}

// TestScoreBatchWorkersMatchesScore asserts the batched serving path is
// bit-identical to one-at-a-time scoring at any worker count.
func TestScoreBatchWorkersMatchesScore(t *testing.T) {
	const seed = 6
	_, sys := buildSystem(t, 30, platform.EnglishPlatforms, seed)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(seed))
	m, err := Train(sys, task, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	b := task.Blocks[0]
	pairs := make([][2]int, len(b.Cands))
	want := make([]float64, len(b.Cands))
	for i, c := range b.Cands {
		pairs[i] = [2]int{c.A, c.B}
		s, err := m.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}
	for _, workers := range []int{1, 4} {
		got, err := m.ScoreBatchWorkers(b.PA, b.PB, pairs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: batch score %d differs: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}
