package core

import (
	"fmt"

	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// Source is the query-time contract shared by the two halves of the old
// monolithic System: the dataset-backed builder (System, which constructs
// views lazily from raw platform data) and the snapshot-backed Store
// (which answers the same questions from precomputed state with no
// dataset at all). Everything Model scoring and the serving engine touch
// goes through this interface, so a trained model serves identically over
// either half.
type Source interface {
	// Views returns the per-account feature views of a platform, indexed
	// by local account id.
	Views(id platform.ID) ([]*features.AccountView, error)
	// RawPair returns the (cached) unimputed pair vector between account
	// a on platform pa and account b on platform pb.
	RawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error)
	// Impute returns the pair vector with missing dimensions filled
	// according to the variant (HYDRA-M's Eqn 18 or HYDRA-Z's zeros).
	Impute(pa platform.ID, a int, pb platform.ID, b int, v Variant, topFriends int) (linalg.Vector, error)
	// Friends resolves the top-k most-interacting friends of a local
	// account (the Eqn-18 core structure) — from the live interaction
	// graph in the builder, from the persisted adjacency slices in the
	// snapshot store. The serving fast path resolves friends itself (once
	// per A-side account per batch) instead of going through Impute.
	Friends(id platform.ID, local, k int) ([]graph.Friend, error)
	// Faces exposes the simulated face matcher (blocking uses it).
	Faces() *vision.Matcher
	// LimitPairCache bounds the pair-vector cache (n ≤ 0 = unbounded).
	LimitPairCache(n int)
	// CacheSize reports the number of cached pair vectors (diagnostics).
	CacheSize() int
}

// friendResolver resolves the top-k most-interacting friends of a local
// account. The plain Impute path reads straight through the Source; the
// serving fast path plugs in a per-batch memo (batchMemo) that caches
// the A side across rows sharing an account.
type friendResolver interface {
	resolveFriends(id platform.ID, local, k int) ([]graph.Friend, error)
}

// rawPairResolver resolves an unimputed pair vector — the Eqn-18
// friend-pair lookups go through it. The plain path reads straight
// through the Source (and its global, mutexed pairCache); the serving
// fast path plugs in a per-batch memo so one query resolves each
// (fa, fb) raw pair once without re-contending on the global cache.
type rawPairResolver interface {
	resolveRawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error)
}

// imputeResolver is what one imputation pass needs around the Source:
// friend resolution plus friend-pair raw vectors.
type imputeResolver interface {
	friendResolver
	rawPairResolver
}

// sourceResolver adapts a Source's Friends/RawPair methods as the
// pass-through imputeResolver.
type sourceResolver struct{ src Source }

func (sr sourceResolver) resolveFriends(id platform.ID, local, k int) ([]graph.Friend, error) {
	return sr.src.Friends(id, local, k)
}

func (sr sourceResolver) resolveRawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error) {
	return sr.src.RawPair(pa, a, pb, b)
}

// imputeScratch holds the reusable buffers of pair imputation: the
// Eqn-18 per-dimension accumulator. The zero value is ready to use; the
// serving fast path recycles instances through a pool so a warm query
// allocates nothing.
type imputeScratch struct {
	sums linalg.Vector
}

// imputePairInto is the shared Impute implementation of both Source
// halves: the variant dispatch and the friend-based imputation of Eqn 18,
// with the friend and friend-pair lookups abstracted so the builder
// reads the live graph, the store reads its precomputed top-friends
// slices, and the serving fast path memoizes both per batch. When tbl is
// non-nil and keyed at the same topFriends depth, a pair with missing
// dimensions is filled from the table's precomputed sums instead of the
// live friend walk — bit-identical by construction, since the table was
// accumulated by the same accumFriendPairSums loop. The imputed vector
// is appended to dst[:0] (pass nil to allocate a fresh, caller-owned
// vector) and returned, possibly regrown. topFriends is the
// core-structure size (the paper uses the top-3 most-interacting friends
// on each side); when fewer friends exist the average runs over the pairs
// that do (the natural generalization of Eqn 18's fixed /9).
func (sc *imputeScratch) imputePairInto(dst linalg.Vector, src Source, res imputeResolver, tbl *ImputeTable,
	pa platform.ID, a int, pb platform.ID, b int, v Variant, topFriends int) (linalg.Vector, error) {

	pv, err := src.RawPair(pa, a, pb, b)
	if err != nil {
		return nil, err
	}
	x := append(dst[:0], pv.X...)
	if v == HydraZ {
		return x, nil // missing dims are already zero
	}
	missing := false
	for _, m := range pv.Mask {
		if !m {
			missing = true
			break
		}
	}
	if !missing {
		return x, nil
	}
	if topFriends <= 0 {
		topFriends = DefaultTopFriends
	}
	if tbl != nil && tbl.k == topFriends && tbl.dim == len(x) {
		if sums, count, ok := tbl.lookup(pa, a, pb, b); ok {
			// count 0 is the recorded "no social context" verdict: the
			// missing dimensions stay zero, as the live path leaves them.
			if count != 0 {
				for d := range x {
					if !pv.Mask[d] {
						x[d] = sums[d] / count
					}
				}
			}
			return x, nil
		}
	}
	friendsA, err := res.resolveFriends(pa, a, topFriends)
	if err != nil {
		return nil, err
	}
	friendsB, err := res.resolveFriends(pb, b, topFriends)
	if err != nil {
		return nil, err
	}
	if len(friendsA) == 0 || len(friendsB) == 0 {
		return x, nil // no social context: fall back to zeros
	}
	// Average the friends' cross-pair similarity per missing dimension
	// (Eqn 18); friend pairs missing the dimension contribute zero, as the
	// paper prescribes.
	dim := len(x)
	sums := sc.sums[:0]
	for d := 0; d < dim; d++ {
		sums = append(sums, 0)
	}
	sc.sums = sums
	count := float64(len(friendsA) * len(friendsB))
	if err := accumFriendPairSums(sums, res, pa, friendsA, pb, friendsB); err != nil {
		return nil, err
	}
	for d := range x {
		if !pv.Mask[d] {
			x[d] = sums[d] / count
		}
	}
	return x, nil
}

// imputePair is the one-shot, allocating form of imputePairInto — the
// Impute implementation behind both Source halves (the Store passes its
// attached table, the System nil).
func imputePair(src Source, tbl *ImputeTable, pa platform.ID, a int, pb platform.ID, b int,
	v Variant, topFriends int) (linalg.Vector, error) {
	var sc imputeScratch
	return sc.imputePairInto(nil, src, sourceResolver{src}, tbl, pa, a, pb, b, v, topFriends)
}

// checkPairRange validates a pair's local account ids against the view
// slices, with the same error both Source halves report.
func checkPairRange(pa platform.ID, a int, pb platform.ID, b int, va, vb []*features.AccountView) error {
	return checkPairRangeN(pa, a, pb, b, len(va), len(vb))
}

// checkPairRangeN is the count-based form of checkPairRange — the lazy
// store knows its account counts without materializing any views.
func checkPairRangeN(pa platform.ID, a int, pb platform.ID, b int, na, nb int) error {
	if a < 0 || a >= na || b < 0 || b >= nb {
		return fmt.Errorf("core: pair (%d,%d) out of range (%s has %d, %s has %d)",
			a, b, pa, na, pb, nb)
	}
	return nil
}

// checkPresentIn rejects a query touching an account a partial snapshot
// does not carry — the shared restriction check of the snapshot-backed
// stores (nil map / missing platform = everything present).
func checkPresentIn(present map[platform.ID][]bool, id platform.ID, local int) error {
	if present == nil {
		return nil
	}
	p, ok := present[id]
	if !ok || (local >= 0 && local < len(p) && p[local]) {
		return nil
	}
	return fmt.Errorf("core: %s account %d is not packed in this shard — route it by the bundle's shard descriptor", id, local)
}
