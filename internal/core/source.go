package core

import (
	"fmt"

	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// Source is the query-time contract shared by the two halves of the old
// monolithic System: the dataset-backed builder (System, which constructs
// views lazily from raw platform data) and the snapshot-backed Store
// (which answers the same questions from precomputed state with no
// dataset at all). Everything Model scoring and the serving engine touch
// goes through this interface, so a trained model serves identically over
// either half.
type Source interface {
	// Views returns the per-account feature views of a platform, indexed
	// by local account id.
	Views(id platform.ID) ([]*features.AccountView, error)
	// RawPair returns the (cached) unimputed pair vector between account
	// a on platform pa and account b on platform pb.
	RawPair(pa platform.ID, a int, pb platform.ID, b int) (features.PairVector, error)
	// Impute returns the pair vector with missing dimensions filled
	// according to the variant (HYDRA-M's Eqn 18 or HYDRA-Z's zeros).
	Impute(pa platform.ID, a int, pb platform.ID, b int, v Variant, topFriends int) (linalg.Vector, error)
	// Faces exposes the simulated face matcher (blocking uses it).
	Faces() *vision.Matcher
	// LimitPairCache bounds the pair-vector cache (n ≤ 0 = unbounded).
	LimitPairCache(n int)
	// CacheSize reports the number of cached pair vectors (diagnostics).
	CacheSize() int
}

// friendsFn resolves the top-k most-interacting friends of a local
// account — from the live interaction graph in the builder, from the
// persisted adjacency slices in the snapshot store.
type friendsFn func(id platform.ID, local, k int) ([]graph.Friend, error)

// imputePair is the shared Impute implementation of both Source halves:
// the variant dispatch and the friend-based imputation of Eqn 18, with
// the friend lookup abstracted so the builder reads the live graph and
// the store reads its precomputed top-friends slices. topFriends is the
// core-structure size (the paper uses the top-3 most-interacting friends
// on each side); when fewer friends exist the average runs over the pairs
// that do (the natural generalization of Eqn 18's fixed /9).
func imputePair(src Source, pa platform.ID, a int, pb platform.ID, b int,
	v Variant, topFriends int, friends friendsFn) (linalg.Vector, error) {

	pv, err := src.RawPair(pa, a, pb, b)
	if err != nil {
		return nil, err
	}
	x := pv.X.Clone()
	if v == HydraZ {
		return x, nil // missing dims are already zero
	}
	missing := false
	for _, m := range pv.Mask {
		if !m {
			missing = true
			break
		}
	}
	if !missing {
		return x, nil
	}
	if topFriends <= 0 {
		topFriends = DefaultTopFriends
	}
	friendsA, err := friends(pa, a, topFriends)
	if err != nil {
		return nil, err
	}
	friendsB, err := friends(pb, b, topFriends)
	if err != nil {
		return nil, err
	}
	if len(friendsA) == 0 || len(friendsB) == 0 {
		return x, nil // no social context: fall back to zeros
	}
	// Average the friends' cross-pair similarity per missing dimension
	// (Eqn 18); friend pairs missing the dimension contribute zero, as the
	// paper prescribes.
	dim := len(x)
	sums := linalg.NewVector(dim)
	count := float64(len(friendsA) * len(friendsB))
	for _, fa := range friendsA {
		for _, fb := range friendsB {
			fpv, err := src.RawPair(pa, fa.ID, pb, fb.ID)
			if err != nil {
				return nil, err
			}
			for d := range sums {
				if fpv.Mask[d] {
					sums[d] += fpv.X[d]
				}
			}
		}
	}
	for d := range x {
		if !pv.Mask[d] {
			x[d] = sums[d] / count
		}
	}
	return x, nil
}

// checkPairRange validates a pair's local account ids against the view
// slices, with the same error both Source halves report.
func checkPairRange(pa platform.ID, a int, pb platform.ID, b int, va, vb []*features.AccountView) error {
	if a < 0 || a >= len(va) || b < 0 || b >= len(vb) {
		return fmt.Errorf("core: pair (%d,%d) out of range (%s has %d, %s has %d)",
			a, b, pa, len(va), pb, len(vb))
	}
	return nil
}
