// Cold start: linking identities when almost no ground-truth labels exist —
// the regime of the paper's Figure 11, where label-hungry baselines
// collapse and HYDRA's structure-consistency objective carries the load by
// propagating the few known linkages along each user's core social
// structure (the Figure 7 mechanism).
//
// The example trains HYDRA with and without the structure objective on a
// task where only ~6% of true pairs are labeled, and also prints the purely
// unsupervised agreement-cluster scores (principal eigenvector of M) for
// the top candidates.
//
//	go run ./examples/coldstart
package main

import (
	"fmt"
	"log"
	"sort"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/structure"
	"hydra/internal/synth"
)

func main() {
	world, err := synth.Generate(synth.DefaultConfig(90, platform.EnglishPlatforms, 11))
	if err != nil {
		log.Fatal(err)
	}
	known := core.LabeledProfilePairs(world.Dataset, platform.Twitter, platform.Facebook,
		[]int{0, 1, 2, 3, 4})
	sys, err := core.NewSystem(world.Dataset, known, features.Lexicons{
		Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment,
	}, features.DefaultConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	opts := core.LabelOpts{LabelFraction: 0.06, NegPerPos: 1, UsePreMatched: false, Seed: 11}
	block, err := core.BuildBlock(sys, platform.Twitter, platform.Facebook,
		blocking.DefaultRules(), opts)
	if err != nil {
		log.Fatal(err)
	}
	task := &core.Task{Blocks: []*core.Block{block}}
	fmt.Printf("cold start: %d candidates, only %d labeled\n\n", len(block.Cands), len(block.Labels))

	for _, mode := range []struct {
		name   string
		gammaM float64
	}{{"HYDRA (structure on)", core.DefaultConfig(11).GammaM}, {"HYDRA (structure off)", 0}} {
		cfg := core.DefaultConfig(11)
		cfg.GammaM = mode.gammaM
		linker := &core.HydraLinker{Cfg: cfg}
		if err := linker.Fit(sys, task); err != nil {
			log.Fatal(err)
		}
		conf, err := core.EvaluateLinker(sys, linker, task.Blocks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %s\n", mode.name, conf)
	}

	// Fully unsupervised: the agreement cluster of the structure matrix.
	embA, _ := sys.Embeddings(platform.Twitter)
	embB, _ := sys.Embeddings(platform.Facebook)
	pa, _ := sys.DS.Platform(platform.Twitter)
	pb, _ := sys.DS.Platform(platform.Facebook)
	scands := make([]structure.Candidate, len(block.Cands))
	for i, c := range block.Cands {
		scands[i] = structure.Candidate{A: c.A, B: c.B}
	}
	m, err := structure.Build(scands, embA, embB, pa.Graph, pb.Graph, structure.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	scores, err := structure.AgreementCluster(m, 11)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		idx   int
		score float64
	}
	var rs []ranked
	for i, s := range scores {
		rs = append(rs, ranked{i, s})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].score > rs[j].score })
	fmt.Println("\ntop-10 agreement-cluster candidates (no labels at all):")
	correct := 0
	for _, r := range rs[:10] {
		c := block.Cands[r.idx]
		same := sys.DS.SamePerson(platform.Twitter, c.A, platform.Facebook, c.B)
		if same {
			correct++
		}
		fmt.Printf("  score=%.3f  %-18q × %-18q  true=%v\n", r.score,
			pa.Account(c.A).Profile.Username, pb.Account(c.B).Profile.Username, same)
	}
	fmt.Printf("unsupervised top-10 precision: %d/10\n", correct)
}
