// Missing-data sensitivity (the Figure 15 scenario): the same world is
// linked by HYDRA-M (missing features imputed from the top-3 interacting
// friends' similarity, Eqn 18) and HYDRA-Z (zeros), under increasingly
// aggressive attribute hiding. Friend-based imputation degrades gracefully;
// zero filling decays faster.
//
//	go run ./examples/missingdata
package main

import (
	"fmt"
	"log"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

func main() {
	fmt.Printf("%-14s %-10s %-10s %-10s\n", "missing-scale", "variant", "precision", "recall")
	for _, scale := range []float64{0.8, 1.0, 1.3} {
		cfg := synth.DefaultConfig(70, platform.EnglishPlatforms, 3)
		cfg.MissingScale = scale
		world, err := synth.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var people []int
		for p := 0; p < 35; p++ {
			people = append(people, p)
		}
		known := core.LabeledProfilePairs(world.Dataset, platform.Twitter, platform.Facebook, people)
		sys, err := core.NewSystem(world.Dataset, known, features.Lexicons{
			Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment,
		}, features.DefaultConfig(3))
		if err != nil {
			log.Fatal(err)
		}
		block, err := core.BuildBlock(sys, platform.Twitter, platform.Facebook,
			blocking.DefaultRules(), core.DefaultLabelOpts(3))
		if err != nil {
			log.Fatal(err)
		}
		task := &core.Task{Blocks: []*core.Block{block}}

		for _, variant := range []core.Variant{core.HydraM, core.HydraZ} {
			hcfg := core.DefaultConfig(3)
			hcfg.Variant = variant
			linker := &core.HydraLinker{Cfg: hcfg}
			if err := linker.Fit(sys, task); err != nil {
				log.Fatal(err)
			}
			conf, err := core.EvaluateLinker(sys, linker, task.Blocks)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14.2f %-10s %-10.3f %-10.3f\n",
				scale, variant, conf.Precision(), conf.Recall())
		}
	}
}
