// Cross-platform linkage over the five "Chinese" social networks — the
// scenario that motivates the paper's introduction (Figure 1): usernames
// diverge wildly across Sina Weibo, Tencent Weibo, Renren, Douban and
// Kaixin, so name-based matching fails and behavior has to carry the
// linkage. The example trains a single multi-block HYDRA model across
// several platform pairs (the block-diagonal M of Eqn 14) and compares it
// with the username-only MOBIUS baseline.
//
//	go run ./examples/crossplatform
package main

import (
	"fmt"
	"log"

	"hydra/internal/baseline"
	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

func main() {
	world, err := synth.Generate(synth.DefaultConfig(80, platform.ChinesePlatforms, 7))
	if err != nil {
		log.Fatal(err)
	}
	var people []int
	for p := 0; p < 40; p++ {
		people = append(people, p)
	}
	known := core.LabeledProfilePairs(world.Dataset, platform.SinaWeibo, platform.Renren, people)
	sys, err := core.NewSystem(world.Dataset, known, features.Lexicons{
		Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment,
	}, features.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}

	// One block per platform pair; the model trains jointly.
	pairs := [][2]platform.ID{
		{platform.SinaWeibo, platform.TencentWeibo},
		{platform.SinaWeibo, platform.Renren},
		{platform.Douban, platform.Kaixin},
	}
	task := &core.Task{}
	for i, pp := range pairs {
		opts := core.DefaultLabelOpts(int64(7 + i))
		block, err := core.BuildBlock(sys, pp[0], pp[1], blocking.DefaultRules(), opts)
		if err != nil {
			log.Fatal(err)
		}
		task.Blocks = append(task.Blocks, block)
		fmt.Printf("block %s × %s: %d candidates, %d labeled\n",
			pp[0], pp[1], len(block.Cands), len(block.Labels))
	}

	for _, linker := range []core.Linker{
		&core.HydraLinker{Cfg: core.DefaultConfig(7)},
		&baseline.MOBIUS{},
	} {
		if err := linker.Fit(sys, task); err != nil {
			log.Fatalf("%s: %v", linker.Name(), err)
		}
		conf, err := core.EvaluateLinker(sys, linker, task.Blocks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %s\n", linker.Name(), conf)
	}
	fmt.Println("\nusername-only matching cannot follow identities across Chinese")
	fmt.Println("platforms; heterogeneous behavior modeling can.")
}
