// Parameter tuning: the paper tunes (γ_L, γ_M, p) by grid search on a
// validation set (Section 7.1) and Figure 8 maps the resulting performance
// surface. This example runs core.GridSearch on a train/validation task
// split, refines the decision threshold with core.TuneThreshold, and prints
// the feature-group weight report for the tuned system.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

func main() {
	world, err := synth.Generate(synth.DefaultConfig(70, platform.EnglishPlatforms, 17))
	if err != nil {
		log.Fatal(err)
	}
	var people []int
	for p := 0; p < 35; p++ {
		people = append(people, p)
	}
	known := core.LabeledProfilePairs(world.Dataset, platform.Twitter, platform.Facebook, people)
	sys, err := core.NewSystem(world.Dataset, known, features.Lexicons{
		Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment,
	}, features.DefaultConfig(17))
	if err != nil {
		log.Fatal(err)
	}

	// Two disjointly-seeded labelings act as train and validation tasks.
	trainTask := mustTask(sys, 18)
	valTask := mustTask(sys, 19)

	res, err := core.GridSearch(sys, trainTask, valTask, core.DefaultConfig(17),
		[]float64{1e-4, 1e-3, 1e-2},
		[]float64{0, 10, 30},
		[]float64{1, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid search over %d points:\n", len(res.Points))
	for _, pt := range res.Points {
		status := fmt.Sprintf("F1=%.3f", pt.F1)
		if pt.Err != nil {
			status = "failed: " + pt.Err.Error()
		}
		fmt.Printf("  γL=%-8g γM=%-5g p=%g  %s\n", pt.GammaL, pt.GammaM, pt.P, status)
	}
	fmt.Printf("best: γL=%g γM=%g p=%g (validation F1 %.3f)\n\n",
		res.Best.GammaL, res.Best.GammaM, res.Best.P, res.BestF1)

	// Fit the tuned model and refine its threshold.
	linker := &core.HydraLinker{Cfg: res.Best}
	if err := linker.Fit(sys, trainTask); err != nil {
		log.Fatal(err)
	}
	thr, err := core.TuneThreshold(sys, linker, valTask)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned decision threshold: %+.4f\n", thr)

	conf, err := core.EvaluateLinker(sys, linker, valTask.Blocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation-task linkage: %s\n\n", conf)

	gws, err := core.FeatureGroupReport(sys, trainTask, core.HydraM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feature-group weights of the tuned system:")
	fmt.Print(core.FormatGroupWeights(gws))
}

func mustTask(sys *core.System, seed int64) *core.Task {
	opts := core.LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: false, Seed: seed}
	block, err := core.BuildBlock(sys, platform.Twitter, platform.Facebook,
		blocking.DefaultRules(), opts)
	if err != nil {
		log.Fatal(err)
	}
	return &core.Task{Blocks: []*core.Block{block}}
}
