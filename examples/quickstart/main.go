// Quickstart: link user identities across two platforms in ~40 lines.
//
// The example generates a small synthetic Twitter+Facebook world (the
// library's stand-in for real crawls), trains HYDRA with default settings,
// and prints precision/recall against the generator's ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

func main() {
	// 1. A world: 60 natural persons, each with accounts on both platforms.
	world, err := synth.Generate(synth.DefaultConfig(60, platform.EnglishPlatforms, 42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The feature system: attribute importance is learned from a handful
	// of known profile pairs; LDA and the lexicon models train on the corpus.
	known := core.LabeledProfilePairs(world.Dataset, platform.Twitter, platform.Facebook,
		[]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	sys, err := core.NewSystem(world.Dataset, known, features.Lexicons{
		Genre:     world.Lexicons.Genre,
		Sentiment: world.Lexicons.Sentiment,
	}, features.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Candidate pairs + labels, then train.
	block, err := core.BuildBlock(sys, platform.Twitter, platform.Facebook,
		blocking.DefaultRules(), core.DefaultLabelOpts(42))
	if err != nil {
		log.Fatal(err)
	}
	task := &core.Task{Blocks: []*core.Block{block}}
	hydra := &core.HydraLinker{Cfg: core.DefaultConfig(42)}
	if err := hydra.Fit(sys, task); err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate and score one pair directly.
	conf, err := core.EvaluateLinker(sys, hydra, task.Blocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("linkage quality:", conf)

	a, _ := world.Dataset.AccountOf(7, platform.Twitter)
	b, _ := world.Dataset.AccountOf(7, platform.Facebook)
	score, err := hydra.PairScore(platform.Twitter, a, platform.Facebook, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("person 7's accounts score %+.3f (positive = same person)\n", score)
}
