// Command hydra-router is the scatter-gather front door of a sharded
// HYDRA serving deployment. Pack a bundle into N shards, start one
// hydra-serve per shard, and point the router at them:
//
//	go run ./cmd/hydra-pack   -bundle bundle.bin -shards 4 -generation 1 -o bundle.bin
//	go run ./cmd/hydra-serve  -bundle bundle.shard0.bin -http :8081   # … one per shard
//	go run ./cmd/hydra-router -shards http://localhost:8081,http://localhost:8082,... -http :8080
//
// The router exposes the same /score /link /topk endpoints as a single
// hydra-serve, so clients need no changes: score and link queries route
// to the one shard the bundle's consistent hash assigns the B-side
// account to, top-k queries fan out to every shard and merge exactly
// (shards partition the candidate space, so the merged ranking is
// bit-identical to an unsharded engine). Replicas of one shard are
// comma-less "|"-separated within a -shards entry:
//
//	-shards 'http://a:8081|http://b:8081,http://a:8082|http://b:8082'
//
// means two shards, each with two replicas; the router fails over inside
// a shard before declaring it down. A shard that stays down degrades
// top-k responses (flagged, partial) instead of failing them.
//
// On startup the router health-checks every shard and refuses to serve
// an incoherent set (wrong shard in a slot, mismatched split topology).
// SIGHUP re-probes — run it after a rolling bundle swap or membership
// repair. SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hydra/internal/obs"
	"hydra/internal/serve/router"
)

func main() {
	var (
		shardsFlag      = flag.String("shards", "", "comma-separated shard endpoints in shard order; '|' separates replicas of one shard")
		httpAddr        = flag.String("http", ":8080", "serve HTTP on this address")
		timeout         = flag.Duration("timeout", 2*time.Second, "per-replica attempt timeout")
		logRequests     = flag.Bool("log-requests", false, "write one JSON log line per HTTP request to stderr")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight requests get to finish on SIGINT/SIGTERM")
		refreshInterval = flag.Duration("refresh-interval", 30*time.Second, "re-probe the serving set in the background on this jittered interval so recovered replicas rejoin without SIGHUP (0 disables; SIGHUP stays the forced path)")
		hedgeAfter      = flag.Duration("hedge-after", 0, "tied hedged top-k requests: fire the backup replica after this delay (0 = adaptive p99-based, negative disables)")
		defaultBudget   = flag.Duration("default-budget", 0, "end-to-end deadline budget applied to requests without an "+`X-Hydra-Deadline-Ms`+" header (0 = unbudgeted)")
	)
	flag.Parse()
	if *shardsFlag == "" {
		fmt.Fprintln(os.Stderr, "usage: hydra-router -shards http://host:8081,http://host:8082[,...] [-http :8080]")
		fmt.Fprintln(os.Stderr, "       replicas of one shard: -shards 'http://a:8081|http://b:8081,...'")
		os.Exit(2)
	}

	var shards [][]router.Backend
	for _, group := range strings.Split(*shardsFlag, ",") {
		var replicas []router.Backend
		for _, u := range strings.Split(group, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			replicas = append(replicas, &router.HTTP{URL: strings.TrimRight(u, "/")})
		}
		shards = append(shards, replicas)
	}
	rt, err := router.New(shards, router.Options{
		Timeout:       *timeout,
		HedgeAfter:    *hedgeAfter,
		DefaultBudget: *defaultBudget,
	})
	if err != nil {
		log.Fatal(err)
	}

	metrics := obs.NewMetrics()
	// Every successful shard health probe (startup refresh, SIGHUP, and
	// each /healthz live-probe) republished as per-shard prescreen and
	// impute gauges, so one router /metrics page shows pruning and
	// imputation health fleet-wide. Registered before the first refresh
	// so the startup probe already populates the gauges.
	rt.SetHealthObserver(func(shard int, h router.Health) {
		s := obs.ShardPrescreen{}
		if ph := h.Prescreen; ph != nil {
			s = obs.ShardPrescreen{
				Enabled: ph.Enabled, Features: ph.Features, Eps: ph.Eps,
				Queries: ph.Queries, Survivors: ph.Survivors,
				Pruned: ph.Pruned, Skipped: ph.Skipped,
				FoldHits: ph.FoldHits, FoldMisses: ph.FoldMisses,
			}
		}
		metrics.SetShardPrescreen(strconv.Itoa(shard), s)
		im := obs.ImputeStats{}
		if ih := h.Impute; ih != nil {
			im = obs.ImputeStats{
				Enabled: ih.Enabled, TableEntries: ih.TableEntries,
				TableHits: ih.TableHits, TableMisses: ih.TableMisses,
				PairCacheSize: ih.PairCacheSize,
				PairCacheHits: ih.PairCacheHits, PairCacheMisses: ih.PairCacheMisses,
			}
		}
		metrics.SetShardImpute(strconv.Itoa(shard), im)
	})

	refresh := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*(*timeout)*time.Duration(rt.NumShards()))
		defer cancel()
		return rt.Refresh(ctx)
	}
	if err := refresh(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "routing over %d shards, %d platform pairs\n", rt.NumShards(), len(rt.Pairs()))

	// Breaker states, hedge outcomes and retry-budget exhaustion on
	// /metrics, snapshotted per scrape.
	metrics.SetRobustSource(func() obs.RouterRobust {
		st := rt.RobustStats()
		out := obs.RouterRobust{
			HedgeFired:     st.HedgeFired,
			HedgeWon:       st.HedgeWon,
			HedgeCancelled: st.HedgeCancelled,
			RetryExhausted: st.RetryExhausted,
			FailFast:       st.FailFast,
		}
		for _, b := range st.Breakers {
			out.Breakers = append(out.Breakers, obs.BreakerState{
				Shard: b.Shard, Replica: b.Replica, Name: b.Name,
				State: b.State, Opens: b.Opens,
			})
		}
		return out
	})

	// Background re-probe on a jittered interval: a replica that comes
	// back (or a repaired topology) rejoins without operator action.
	stopAutoRefresh := rt.StartAutoRefresh(*refreshInterval, func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "background refresh failed: %v — keeping previous view of the serving set\n", err)
		}
	})
	defer stopAutoRefresh()

	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	mux.Handle("/metrics", metrics.Handler())
	var logs io.Writer
	if *logRequests {
		logs = os.Stderr
	}
	handler := obs.Middleware(mux, metrics, logs)

	fmt.Fprintf(os.Stderr, "serving HTTP on %s (/healthz /score /link /topk /metrics)\n", *httpAddr)
	srv := &http.Server{
		Addr:              *httpAddr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	for {
		select {
		case err := <-errCh:
			if err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
			return
		case sig := <-sigs:
			switch sig {
			case syscall.SIGHUP:
				if err := refresh(); err != nil {
					fmt.Fprintf(os.Stderr, "refresh failed: %v — keeping previous view of the serving set\n", err)
					continue
				}
				fmt.Fprintf(os.Stderr, "refreshed: %d shards coherent\n", rt.NumShards())
			default:
				fmt.Fprintf(os.Stderr, "%s: draining (up to %s) …\n", sig, *drainTimeout)
				ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
				err := srv.Shutdown(ctx)
				cancel()
				if err != nil {
					log.Fatalf("drain incomplete after %s: %v", *drainTimeout, err)
				}
				fmt.Fprintln(os.Stderr, "drained; bye")
				return
			}
		}
	}
}
