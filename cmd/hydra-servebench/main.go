// Command hydra-servebench benchmarks the serving path end to end:
// single-pair score latency, top-k query latency over the sharded
// candidate index, and batched score throughput. It trains a small model
// through the staged pipeline, round-trips it through the artifact codec
// (so the measured path is exactly what hydra-serve runs), and drives the
// engine with testing.Benchmark:
//
//	go run ./cmd/hydra-servebench                    # human-readable
//	go run ./cmd/hydra-servebench -json BENCH_PR3.json
//
// The -json snapshot gives the perf trajectory a mechanical data point
// per PR (see make bench-json).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/serve"
	"hydra/internal/synth"
)

// benchPoint is one benchmark's snapshot.
type benchPoint struct {
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// snapshot is the BENCH_PR3.json schema.
type snapshot struct {
	Bench      string     `json:"bench"`
	Persons    int        `json:"persons"`
	Workers    int        `json:"workers"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Candidates int        `json:"candidates"`
	TopKShard  float64    `json:"mean_shard_size"`
	Single     benchPoint `json:"single_pair_score"`
	TopK       benchPoint `json:"topk5"`
	Batch      benchPoint `json:"batch_score"`
	// PairsPerSec is the batched-score throughput (candidate pairs scored
	// per second across the whole candidate set per op).
	PairsPerSec float64 `json:"batch_pairs_per_sec"`
}

func main() {
	var (
		persons  = flag.Int("persons", 100, "world size for the benchmark model")
		seed     = flag.Int64("seed", 1, "world and model seed")
		workers  = flag.Int("workers", 0, "engine worker pool (0 = all cores)")
		jsonPath = flag.String("json", "", "write the snapshot as JSON to this path (e.g. BENCH_PR3.json)")
	)
	flag.Parse()

	eng, cands, err := buildEngine(*persons, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}
	pa, pb := platform.Twitter, platform.Facebook
	fmt.Fprintf(os.Stderr, "engine ready: %d candidates over %d persons; workers=%d gomaxprocs=%d\n",
		len(cands), *persons, *workers, runtime.GOMAXPROCS(0))

	// Warm the pair cache once so every benchmark measures the steady
	// state of a long-lived server, not first-touch feature assembly.
	if _, err := eng.ScoreBatch(pa, pb, cands); err != nil {
		log.Fatal(err)
	}

	single := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cands[i%len(cands)]
			if _, err := eng.Score(pa, c[0], pb, c[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	as := aSide(cands)
	topk := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.TopK(pa, as[i%len(as)], pb, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	batch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.ScoreBatch(pa, pb, cands); err != nil {
				b.Fatal(err)
			}
		}
	})

	snap := snapshot{
		Bench:      "serve",
		Persons:    *persons,
		Workers:    *workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Candidates: len(cands),
		TopKShard:  float64(len(cands)) / float64(len(as)),
		Single:     point(single),
		TopK:       point(topk),
		Batch:      point(batch),
	}
	if ns := point(batch).NsPerOp; ns > 0 {
		snap.PairsPerSec = float64(len(cands)) / (ns / 1e9)
	}

	fmt.Printf("single-pair score:   %12.0f ns/op  (%d ops)\n", snap.Single.NsPerOp, snap.Single.Ops)
	fmt.Printf("topk(5) query:       %12.0f ns/op  (%d ops, mean shard %.1f)\n", snap.TopK.NsPerOp, snap.TopK.Ops, snap.TopKShard)
	fmt.Printf("batched score:       %12.0f ns/op  (%d ops, %d pairs/op, %.0f pairs/s)\n",
		snap.Batch.NsPerOp, snap.Batch.Ops, snap.Candidates, snap.PairsPerSec)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// point converts a testing result.
func point(r testing.BenchmarkResult) benchPoint {
	return benchPoint{NsPerOp: float64(r.NsPerOp()), Ops: r.N}
}

// aSide lists the distinct A-side accounts of the candidate set in order.
func aSide(cands [][2]int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range cands {
		if !seen[c[0]] {
			seen[c[0]] = true
			out = append(out, c[0])
		}
	}
	return out
}

// buildEngine trains a model on a synthetic world through the staged
// pipeline, round-trips it through the artifact codec, and restores it
// into a serving engine — the exact hydra-serve startup path, minus disk.
func buildEngine(persons int, seed int64, workers int) (*serve.Engine, [][2]int, error) {
	world, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		return nil, nil, err
	}
	var people []int
	for i := 0; i < persons/2; i++ {
		people = append(people, i)
	}
	sysState, err := pipeline.Systemize(world.Dataset, pipeline.SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: people,
		Lexicons:     features.Lexicons{Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment},
		FeatCfg:      features.DefaultConfig(seed),
	})
	if err != nil {
		return nil, nil, err
	}
	rules := blocking.DefaultRules()
	rules.Workers = workers
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: rules,
		Label: core.LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: true, Seed: seed},
	})
	if err != nil {
		return nil, nil, err
	}
	hcfg := core.DefaultConfig(seed)
	hcfg.Workers = workers
	fitted, err := pipeline.Fit(blocked, hcfg)
	if err != nil {
		return nil, nil, err
	}
	art, err := fitted.Artifact()
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := pipeline.WriteArtifact(&buf, art); err != nil {
		return nil, nil, err
	}
	art2, err := pipeline.ReadArtifact(&buf)
	if err != nil {
		return nil, nil, err
	}
	eng, err := serve.NewEngine(art2, world.Dataset, workers)
	if err != nil {
		return nil, nil, err
	}
	var cands [][2]int
	for _, c := range blocked.Task.Blocks[0].Cands {
		cands = append(cands, [2]int{c.A, c.B})
	}
	return eng, cands, nil
}
