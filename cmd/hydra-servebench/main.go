// Command hydra-servebench benchmarks the serving path end to end:
// cold-start (artifact + world rebuild vs self-contained bundle decode,
// v2 JSON vs v3 binary sections), single-pair score latency, top-k query
// latency over the sharded candidate index, and batched score
// throughput — with allocations per op, so the zero-alloc steady state
// is a measured number, not a claim. It trains a small model through the
// staged pipeline, round-trips it through both codecs (so the measured
// paths are exactly what hydra-serve runs), verifies the engines agree
// bit for bit, and drives the bundle engine with testing.Benchmark:
//
//	go run ./cmd/hydra-servebench                    # human-readable
//	go run ./cmd/hydra-servebench -json BENCH_PR5.json
//
// The -json snapshot gives the perf trajectory a mechanical data point
// per PR (see make bench-json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/serve"
	"hydra/internal/serve/router"
	"hydra/internal/synth"
)

// benchPoint is one benchmark's snapshot.
type benchPoint struct {
	NsPerOp     float64 `json:"ns_per_op"`
	Ops         int     `json:"ops"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// snapshot is the BENCH_PR5.json schema.
type snapshot struct {
	Bench      string  `json:"bench"`
	Persons    int     `json:"persons"`
	Workers    int     `json:"workers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Candidates int     `json:"candidates"`
	TopKShard  float64 `json:"mean_shard_size"`
	// SupportVectors is the compacted support-set size — the kernel
	// evaluations one warm Score pays.
	SupportVectors int `json:"support_vectors"`
	// Cold start: decoding + engine construction, best of three runs.
	// The world path re-systemizes the dataset (LDA included); the
	// bundle path (v3 binary) only decodes precomputed state.
	ColdWorldMs  float64 `json:"cold_start_world_ms"`
	ColdBundleMs float64 `json:"cold_start_bundle_ms"`
	// Bundle format comparison: the same model packed as legacy v2 JSON
	// and as v3 binary sections, with best-of-five decode times.
	BundleV2Bytes    int     `json:"bundle_v2_bytes"`
	BundleV3Bytes    int     `json:"bundle_v3_bytes"`
	BundleV2DecodeMs float64 `json:"bundle_v2_decode_ms"`
	BundleV3DecodeMs float64 `json:"bundle_v3_decode_ms"`
	// Steady state, measured on the bundle-backed engine (the deployed
	// configuration; the world-backed engine is bit-identical and its
	// warm-path numbers match).
	Single benchPoint `json:"single_pair_score"`
	TopK   benchPoint `json:"topk5"`
	Batch  benchPoint `json:"batch_score"`
	// Distributed serving: top-k fanned out over RouterShards in-process
	// shards and merged exactly, and the p99 latency of top-k queries
	// racing a stream of hot bundle swaps (the "pause" a swap inflicts,
	// which the atomic-pointer design keeps at plain query latency).
	RouterShards   int        `json:"router_shards"`
	RouterTopK     benchPoint `json:"router_topk5"`
	SwapPauseP99Ms float64    `json:"swap_pause_p99_ms"`
	// PairsPerSec is the batched-score throughput (candidate pairs scored
	// per second across the whole candidate set per op).
	PairsPerSec float64 `json:"batch_pairs_per_sec"`
	// Prescreen is the two-tier scoring benchmark: exact vs
	// prescreen+rescore top-k over production-shaped (full cross product)
	// shards, with the recall-vs-speedup curve across ε safety factors.
	Prescreen *prescreenSection `json:"prescreen,omitempty"`
	// Impute is the pack-time Eqn-18 table benchmark: wide top-k with
	// the table consulted vs the live friend-walk fallback, plus the
	// table's wire size and measured hit ratio.
	Impute *imputeSection `json:"impute,omitempty"`
	// Before carries the headline numbers of the previous PR's snapshot
	// (-prev) so one file shows the delta.
	Before *beforeBlock `json:"before,omitempty"`
}

// prescreenCurvePoint is one safety factor's row of the
// recall-vs-speedup curve. Certified marks factors ≥ 1, where the
// margin still covers the measured worst-case error and recall is
// guaranteed 1; sub-1 factors deliberately shrink the margin below
// certification to show where the cliff is.
type prescreenCurvePoint struct {
	Safety        float64    `json:"safety"`
	Eps           float64    `json:"eps"`
	Certified     bool       `json:"certified"`
	TopK          benchPoint `json:"topk5"`
	Speedup       float64    `json:"speedup_vs_exact"`
	MeanSurvivors float64    `json:"mean_survivors"`
	Recall        float64    `json:"recall_at_5"`
}

// prescreenSection is the two-tier scoring block of the snapshot. The
// headline fields are the bundle's shipped configuration; RecallAt5 is
// asserted to be exactly 1.0 before the snapshot is written.
type prescreenSection struct {
	Features      int                   `json:"features"`
	EpsRaw        float64               `json:"eps_raw"`
	Safety        float64               `json:"safety"`
	Eps           float64               `json:"eps"`
	WideShard     float64               `json:"wide_shard_size"`
	Exact         benchPoint            `json:"wide_topk5_exact"`
	TopK          benchPoint            `json:"wide_topk5_prescreen"`
	Speedup       float64               `json:"speedup_vs_exact"`
	MeanSurvivors float64               `json:"mean_survivors"`
	RecallAt5     float64               `json:"recall_at_5"`
	Curve         []prescreenCurvePoint `json:"speedup_curve"`
}

// imputeSection is the pack-time impute-table block of the snapshot:
// the same wide (full cross-product) top-k, measured with the table
// consulted and with it disabled (the live Eqn-18 friend walk), with
// the shipped bundle's table wire size and the measured lookup hit
// ratio. RecallAt5 compares table-on rows to table-off rows and is
// asserted to be exactly 1.0 before the snapshot is written — the
// table is a precomputation of the identical float sequence, so any
// difference is a bug, not a tradeoff.
type imputeSection struct {
	TableEntries int        `json:"table_entries"`
	TableBytes   int        `json:"table_bytes"`
	WideShard    float64    `json:"wide_shard_size"`
	TableOn      benchPoint `json:"wide_topk5_table_on"`
	TableOff     benchPoint `json:"wide_topk5_table_off"`
	Speedup      float64    `json:"speedup_table_on_vs_off"`
	HitRatio     float64    `json:"table_hit_ratio"`
	RecallAt5    float64    `json:"recall_at_5"`
}

// beforeBlock is the previous snapshot's headline numbers, lifted via
// -prev so before and after live in one file.
type beforeBlock struct {
	Source           string  `json:"source"`
	ColdBundleMs     float64 `json:"cold_start_bundle_ms"`
	BundleBytes      int     `json:"bundle_bytes"`
	SingleNsPerOp    float64 `json:"single_pair_score_ns_per_op"`
	TopK5NsPerOp     float64 `json:"topk5_ns_per_op"`
	BatchNsPerOp     float64 `json:"batch_score_ns_per_op"`
	BatchPairsPerSec float64 `json:"batch_pairs_per_sec"`
}

// loadBefore reads the headline numbers out of a previous snapshot; its
// schema only needs the fields both generations share.
func loadBefore(path string) (*beforeBlock, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var old struct {
		ColdBundleMs float64    `json:"cold_start_bundle_ms"`
		BundleBytes  int        `json:"bundle_bytes"`
		BundleV3     int        `json:"bundle_v3_bytes"`
		Single       benchPoint `json:"single_pair_score"`
		TopK         benchPoint `json:"topk5"`
		Batch        benchPoint `json:"batch_score"`
		PairsPerSec  float64    `json:"batch_pairs_per_sec"`
	}
	if err := json.Unmarshal(raw, &old); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	bytes := old.BundleBytes
	if bytes == 0 {
		bytes = old.BundleV3
	}
	return &beforeBlock{
		Source:           path,
		ColdBundleMs:     old.ColdBundleMs,
		BundleBytes:      bytes,
		SingleNsPerOp:    old.Single.NsPerOp,
		TopK5NsPerOp:     old.TopK.NsPerOp,
		BatchNsPerOp:     old.Batch.NsPerOp,
		BatchPairsPerSec: old.PairsPerSec,
	}, nil
}

func main() {
	var (
		persons  = flag.Int("persons", 100, "world size for the benchmark model")
		seed     = flag.Int64("seed", 1, "world and model seed")
		workers  = flag.Int("workers", 0, "engine worker pool (0 = all cores)")
		jsonPath = flag.String("json", "", "write the snapshot as JSON to this path (e.g. BENCH_PR5.json)")
		prevPath = flag.String("prev", "", "embed this previous snapshot's headline numbers as a before block (e.g. BENCH_PR4.json)")
	)
	flag.Parse()

	env, err := buildEnv(*persons, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}
	eng, cands := env.bundleEng, env.cands
	pa, pb := platform.Twitter, platform.Facebook
	fmt.Fprintf(os.Stderr, "engines ready: %d candidates over %d persons; workers=%d gomaxprocs=%d; bundle v3 %d bytes (v2 %d)\n",
		len(cands), *persons, *workers, runtime.GOMAXPROCS(0), len(env.bundleV3Bytes), len(env.bundleV2Bytes))

	// Sanity: the bundle engine must serve the world engine's exact bits
	// before its numbers mean anything.
	worldScores, err := env.worldEng.ScoreBatch(pa, pb, cands)
	if err != nil {
		log.Fatal(err)
	}
	bundleScores, err := eng.ScoreBatch(pa, pb, cands)
	if err != nil {
		log.Fatal(err)
	}
	for i := range worldScores {
		if worldScores[i] != bundleScores[i] {
			log.Fatalf("engines disagree on pair %d: world %v vs bundle %v", i, worldScores[i], bundleScores[i])
		}
	}

	single := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cands[i%len(cands)]
			if _, err := eng.Score(pa, c[0], pb, c[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	as := aSide(cands)
	var topkDst []serve.Scored
	topk := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if topkDst, err = eng.TopKAppend(topkDst[:0], pa, as[i%len(as)], pb, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	batchOut := make([]float64, len(cands))
	batch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.Model.ScoreBatchInto(pa, pb, cands, eng.Workers, batchOut); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Distributed serving: scatter-gather top-k over in-process shards.
	const routerShards = 4
	rt, err := buildRouter(env.bundle, routerShards, *workers)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	routerTopK := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rt.TopK(ctx, pa, as[i%len(as)], pb, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	swapP99, err := swapPauseP99(env.bundle, pa, pb, as, *workers)
	if err != nil {
		log.Fatal(err)
	}
	prescreen, err := benchPrescreen(env.bundle, pa, pb, *workers)
	if err != nil {
		log.Fatal(err)
	}
	impute, err := benchImpute(env.bundle, pa, pb, *workers)
	if err != nil {
		log.Fatal(err)
	}

	snap := snapshot{
		Bench:          "serve-bundle",
		Persons:        *persons,
		Workers:        *workers,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Candidates:     len(cands),
		TopKShard:      float64(len(cands)) / float64(len(as)),
		SupportVectors: eng.Model.NumSupport(),
		ColdWorldMs:    env.coldWorldMs,
		ColdBundleMs:   env.coldBundleMs,
		BundleV2Bytes:  len(env.bundleV2Bytes),
		BundleV3Bytes:  len(env.bundleV3Bytes),
		Single:         point(single),
		TopK:           point(topk),
		Batch:          point(batch),
		RouterShards:   routerShards,
		RouterTopK:     point(routerTopK),
		SwapPauseP99Ms: swapP99,
		Prescreen:      prescreen,
		Impute:         impute,
	}
	snap.BundleV2DecodeMs, err = coldStart(5, func() error {
		_, err := pipeline.ReadBundle(bytes.NewReader(env.bundleV2Bytes))
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	snap.BundleV3DecodeMs, err = coldStart(5, func() error {
		_, err := pipeline.ReadBundle(bytes.NewReader(env.bundleV3Bytes))
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if ns := snap.Batch.NsPerOp; ns > 0 {
		snap.PairsPerSec = float64(len(cands)) / (ns / 1e9)
	}
	if *prevPath != "" {
		snap.Before, err = loadBefore(*prevPath)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("cold start (world):  %12.1f ms    (artifact restore: systemize + index build)\n", snap.ColdWorldMs)
	fmt.Printf("cold start (bundle): %12.1f ms    (v3 decode, %d bytes)\n", snap.ColdBundleMs, snap.BundleV3Bytes)
	fmt.Printf("bundle decode:       v2 %.1f ms / %d bytes   v3 %.1f ms / %d bytes\n",
		snap.BundleV2DecodeMs, snap.BundleV2Bytes, snap.BundleV3DecodeMs, snap.BundleV3Bytes)
	fmt.Printf("single-pair score:   %12.0f ns/op  (%d ops, %d allocs/op, %d B/op, %d SVs)\n",
		snap.Single.NsPerOp, snap.Single.Ops, snap.Single.AllocsPerOp, snap.Single.BytesPerOp, snap.SupportVectors)
	fmt.Printf("topk(5) query:       %12.0f ns/op  (%d ops, %d allocs/op, %d B/op, mean shard %.1f)\n",
		snap.TopK.NsPerOp, snap.TopK.Ops, snap.TopK.AllocsPerOp, snap.TopK.BytesPerOp, snap.TopKShard)
	fmt.Printf("batched score:       %12.0f ns/op  (%d ops, %d allocs/op, %d pairs/op, %.0f pairs/s)\n",
		snap.Batch.NsPerOp, snap.Batch.Ops, snap.Batch.AllocsPerOp, snap.Candidates, snap.PairsPerSec)
	fmt.Printf("router topk(5):      %12.0f ns/op  (%d ops, %d allocs/op, %d in-process shards, exact merge)\n",
		snap.RouterTopK.NsPerOp, snap.RouterTopK.Ops, snap.RouterTopK.AllocsPerOp, snap.RouterShards)
	fmt.Printf("swap pause p99:      %12.3f ms    (topk latency racing a stream of hot bundle swaps)\n",
		snap.SwapPauseP99Ms)
	fmt.Printf("wide topk(5) exact:  %12.0f ns/op  (full cross-product shard, %.0f candidates)\n",
		prescreen.Exact.NsPerOp, prescreen.WideShard)
	fmt.Printf("wide topk(5) 2-tier: %12.0f ns/op  (%.1fx, %d-feature prescreen, ε=%.4g, mean survivors %.1f, recall %.3f)\n",
		prescreen.TopK.NsPerOp, prescreen.Speedup, prescreen.Features, prescreen.Eps, prescreen.MeanSurvivors, prescreen.RecallAt5)
	for _, cp := range prescreen.Curve {
		cert := "certified"
		if !cp.Certified {
			cert = "UNCERTIFIED"
		}
		fmt.Printf("  safety %4.2f: %9.0f ns/op  %5.2fx  survivors %5.1f  recall %.3f  (%s)\n",
			cp.Safety, cp.TopK.NsPerOp, cp.Speedup, cp.MeanSurvivors, cp.Recall, cert)
	}
	fmt.Printf("wide topk(5) table-on:  %9.0f ns/op  (%d entries, %d table bytes, hit ratio %.3f, recall %.3f)\n",
		impute.TableOn.NsPerOp, impute.TableEntries, impute.TableBytes, impute.HitRatio, impute.RecallAt5)
	fmt.Printf("wide topk(5) table-off: %9.0f ns/op  (%.2fx slower without the pack-time Eqn-18 table)\n",
		impute.TableOff.NsPerOp, impute.Speedup)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// point converts a testing result (allocation stats are populated
// because every benchmark calls b.ReportAllocs).
func point(r testing.BenchmarkResult) benchPoint {
	return benchPoint{
		NsPerOp:     float64(r.NsPerOp()),
		Ops:         r.N,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// aSide lists the distinct A-side accounts of the candidate set in order.
func aSide(cands [][2]int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range cands {
		if !seen[c[0]] {
			seen[c[0]] = true
			out = append(out, c[0])
		}
	}
	return out
}

// benchEnv is everything the benchmark drives: both engines, the
// candidate list, both bundle encodings, and the measured cold-start
// times.
type benchEnv struct {
	worldEng      *serve.Engine
	bundleEng     *serve.Engine
	bundle        *pipeline.Bundle
	cands         [][2]int
	bundleV2Bytes []byte
	bundleV3Bytes []byte
	coldWorldMs   float64
	coldBundleMs  float64
}

// buildRouter splits the bundle into count shards, builds one in-process
// engine per shard and fronts them with a refreshed Router — the
// all-in-one-process form of the sharded deployment, which prices the
// scatter-gather machinery itself (goroutine fan-out + exact merge)
// without network noise.
func buildRouter(b *pipeline.Bundle, count, workers int) (*router.Router, error) {
	subs, err := pipeline.SplitBundle(b, count, 7, 1)
	if err != nil {
		return nil, err
	}
	shards := make([][]router.Backend, count)
	for i, sb := range subs {
		eng, err := serve.NewEngineFromBundle(sb, workers)
		if err != nil {
			return nil, err
		}
		shards[i] = []router.Backend{&router.Local{Src: eng, Label: fmt.Sprintf("local-%d", i)}}
	}
	rt, err := router.New(shards, router.Options{})
	if err != nil {
		return nil, err
	}
	if err := rt.Refresh(context.Background()); err != nil {
		return nil, err
	}
	return rt, nil
}

// swapPauseP99 measures what a hot bundle swap costs in-flight queries:
// one goroutine hammers top-k through a Swappable while another installs
// a stream of new generations; the p99 of the observed query latencies
// is the "pause". The atomic-pointer swap path has no lock on the query
// side, so this should sit at plain topk latency.
func swapPauseP99(b *pipeline.Bundle, pa, pb platform.ID, as []int, workers int) (float64, error) {
	const gens = 20
	engines := make([]*serve.Engine, gens)
	for g := range engines {
		subs, err := pipeline.SplitBundle(b, 1, 7, uint64(g+1))
		if err != nil {
			return 0, err
		}
		if engines[g], err = serve.NewEngineFromBundle(subs[0], workers); err != nil {
			return 0, err
		}
		// The serve path prewarms an incoming generation before
		// publishing it, so the pause measured here is the swap itself,
		// not the new engine's cold caches.
		if err := engines[g].Prewarm(0); err != nil {
			return 0, err
		}
	}
	s := serve.NewSwappable(engines[0])
	done := make(chan error, 1)
	go func() {
		for _, next := range engines[1:] {
			if _, err := s.Swap(next); err != nil {
				done <- err
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
		done <- nil
	}()
	var lat []float64
	var dst []serve.Scored
	for i := 0; ; i++ {
		select {
		case err := <-done:
			if err != nil {
				return 0, err
			}
			sort.Float64s(lat)
			return lat[(len(lat)*99)/100], nil
		default:
		}
		eng, _ := s.Current()
		t0 := time.Now()
		var err error
		if dst, err = eng.TopKAppend(dst[:0], pa, as[i%len(as)], pb, 5); err != nil {
			return 0, err
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
	}
}

// coldStart returns the best-of-reps wall-clock milliseconds of fn —
// the startup paths dominate by orders of magnitude, so min-of-reps is
// plenty to shed scheduler noise.
func coldStart(reps int, fn func() error) (float64, error) {
	best := 0.0
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		if r == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// buildEnv trains a model on a synthetic world through the staged
// pipeline, persists it both ways (artifact and bundle, the bundle in
// both wire formats), and measures both hydra-serve startup paths from
// their serialized forms — exactly what a process start pays, minus only
// the file read.
func buildEnv(persons int, seed int64, workers int) (*benchEnv, error) {
	world, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		return nil, err
	}
	var people []int
	for i := 0; i < persons/2; i++ {
		people = append(people, i)
	}
	sysState, err := pipeline.Systemize(world.Dataset, pipeline.SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: people,
		Lexicons:     features.Lexicons{Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment},
		FeatCfg:      features.DefaultConfig(seed),
	})
	if err != nil {
		return nil, err
	}
	rules := blocking.DefaultRules()
	rules.Workers = workers
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: rules,
		Label: core.LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: true, Seed: seed},
	})
	if err != nil {
		return nil, err
	}
	hcfg := core.DefaultConfig(seed)
	hcfg.Workers = workers
	fitted, err := pipeline.Fit(blocked, hcfg)
	if err != nil {
		return nil, err
	}
	art, err := fitted.Artifact()
	if err != nil {
		return nil, err
	}
	var abuf bytes.Buffer
	if err := pipeline.WriteArtifact(&abuf, art); err != nil {
		return nil, err
	}
	bundle, err := fitted.Bundle(workers)
	if err != nil {
		return nil, err
	}
	var bbuf bytes.Buffer
	if err := pipeline.WriteBundle(&bbuf, bundle); err != nil {
		return nil, err
	}
	v2 := *bundle
	v2.Version = pipeline.BundleVersionJSON
	var b2buf bytes.Buffer
	if err := pipeline.WriteBundle(&b2buf, &v2); err != nil {
		return nil, err
	}
	var wbuf bytes.Buffer
	if err := platform.Encode(&wbuf, world.Dataset); err != nil {
		return nil, err
	}

	env := &benchEnv{bundle: bundle, bundleV3Bytes: bbuf.Bytes(), bundleV2Bytes: b2buf.Bytes()}
	env.coldWorldMs, err = coldStart(3, func() error {
		art2, err := pipeline.ReadArtifact(bytes.NewReader(abuf.Bytes()))
		if err != nil {
			return err
		}
		ds, err := pipeline.LoadWorld(bytes.NewReader(wbuf.Bytes()))
		if err != nil {
			return err
		}
		env.worldEng, err = serve.NewEngine(art2, ds, workers)
		return err
	})
	if err != nil {
		return nil, err
	}
	env.coldBundleMs, err = coldStart(3, func() error {
		b2, err := pipeline.ReadBundle(bytes.NewReader(env.bundleV3Bytes))
		if err != nil {
			return err
		}
		env.bundleEng, err = serve.NewEngineFromBundle(b2, workers)
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, c := range blocked.Task.Blocks[0].Cands {
		env.cands = append(env.cands, [2]int{c.A, c.B})
	}
	// Warm both engines' pair caches so the steady-state numbers reflect
	// a long-lived server, not first-touch feature assembly.
	if _, err := env.worldEng.ScoreBatch(platform.Twitter, platform.Facebook, env.cands); err != nil {
		return nil, err
	}
	if _, err := env.bundleEng.ScoreBatch(platform.Twitter, platform.Facebook, env.cands); err != nil {
		return nil, err
	}
	return env, nil
}

// wideIndexBundle returns a copy of b whose candidate indexes hold the
// full A×B cross product — production-shaped shards, where a top-k
// query actually has candidates to prune. The blocked indexes of the
// benchmark world average ~3 candidates per shard, below the two-tier
// path's engagement floor. The pack-time impute table is rebuilt for
// the widened indexes (it is keyed by candidate pair, so the packed
// table covers only the original narrow shards).
func wideIndexBundle(b *pipeline.Bundle, workers int) (*pipeline.Bundle, error) {
	c := *b
	c.Indexes = make([]blocking.IndexParts, len(b.Indexes))
	for i, ix := range b.Indexes {
		na := len(b.Views[ix.PA])
		nb := len(b.Views[ix.PB])
		byA := make([][]blocking.Candidate, na)
		for a := 0; a < na; a++ {
			shard := make([]blocking.Candidate, nb)
			for bb := 0; bb < nb; bb++ {
				shard[bb] = blocking.Candidate{A: a, B: bb}
			}
			byA[a] = shard
		}
		c.Indexes[i] = blocking.IndexParts{PA: ix.PA, PB: ix.PB, Rules: ix.Rules, ByA: byA}
	}
	tbl, err := pipeline.BuildBundleImputeTable(&c, workers)
	if err != nil {
		return nil, err
	}
	c.ImputeTable = tbl
	return &c, nil
}

// benchPrescreen prices the two-tier scorer against the exact engine on
// full cross-product shards and sweeps the safety factor to map recall
// against speedup. The bundle's shipped configuration is the headline;
// its recall is asserted to be exactly 1.0 — the certified-exactness
// claim, measured rather than trusted.
func benchPrescreen(b *pipeline.Bundle, pa, pb platform.ID, workers int) (*prescreenSection, error) {
	if b.Prescreen == nil {
		return nil, fmt.Errorf("bundle carries no prescreen — packBundle should have built one")
	}
	wb, err := wideIndexBundle(b, workers)
	if err != nil {
		return nil, err
	}
	na := len(wb.Views[pa])
	nb := len(wb.Views[pb])

	exactEng, err := serve.NewEngineFromBundle(wb, workers)
	if err != nil {
		return nil, err
	}
	exactEng.SetPrescreenEnabled(false)
	// Reference rankings (also warms the exact engine's pair cache).
	ref := make([][]serve.Scored, na)
	for a := 0; a < na; a++ {
		if ref[a], err = exactEng.TopK(pa, a, pb, 5); err != nil {
			return nil, err
		}
	}
	var dst []serve.Scored
	exact := testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if dst, err = exactEng.TopKAppend(dst[:0], pa, i%na, pb, 5); err != nil {
				bb.Fatal(err)
			}
		}
	})

	// One engine per safety factor: scalars change, the projection (W, B,
	// V) is shared. Factors below 1 shrink the margin under the measured
	// worst-case error — deliberately uncertified, to locate the recall
	// cliff the certified margin keeps clear of.
	sec := &prescreenSection{
		Features:  b.Prescreen.Features,
		EpsRaw:    b.Prescreen.EpsRaw,
		Safety:    b.Prescreen.Safety,
		Eps:       b.Prescreen.Eps,
		WideShard: float64(nb),
		Exact:     point(exact),
	}
	for _, safety := range []float64{0.25, 0.5, 1, b.Prescreen.Safety, 3} {
		ps := *b.Prescreen
		ps.Safety = safety
		ps.Eps = b.Prescreen.EpsRaw * safety
		if safety < 1 {
			ps.EpsRaw = ps.Eps // below certification: shrink the floor too
		}
		cb := *wb
		cb.Prescreen = &ps
		eng, err := serve.NewEngineFromBundle(&cb, workers)
		if err != nil {
			return nil, err
		}
		// Recall against the exact reference (also warms the engine).
		matched, total := 0, 0
		for a := 0; a < na; a++ {
			got, err := eng.TopK(pa, a, pb, 5)
			if err != nil {
				return nil, err
			}
			rows := make(map[serve.Scored]bool, len(got))
			for _, r := range got {
				rows[r] = true
			}
			for _, r := range ref[a] {
				total++
				if rows[r] {
					matched++
				}
			}
		}
		recall := 1.0
		if total > 0 {
			recall = float64(matched) / float64(total)
		}
		res := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if dst, err = eng.TopKAppend(dst[:0], pa, i%na, pb, 5); err != nil {
					bb.Fatal(err)
				}
			}
		})
		cp := prescreenCurvePoint{
			Safety:    safety,
			Eps:       ps.Eps,
			Certified: safety >= 1,
			TopK:      point(res),
			Recall:    recall,
		}
		if cp.TopK.NsPerOp > 0 {
			cp.Speedup = sec.Exact.NsPerOp / cp.TopK.NsPerOp
		}
		if ph := eng.PrescreenHealth(); ph != nil && ph.Queries > 0 {
			cp.MeanSurvivors = float64(ph.Survivors) / float64(ph.Queries)
		}
		sec.Curve = append(sec.Curve, cp)
		if safety == b.Prescreen.Safety {
			sec.TopK = cp.TopK
			sec.Speedup = cp.Speedup
			sec.MeanSurvivors = cp.MeanSurvivors
			sec.RecallAt5 = cp.Recall
		}
	}
	if sec.RecallAt5 != 1.0 {
		return nil, fmt.Errorf("shipped prescreen (safety %g) measured recall %.4f ≠ 1.0 — the certified margin is broken",
			b.Prescreen.Safety, sec.RecallAt5)
	}
	return sec, nil
}

// benchImpute prices the pack-time Eqn-18 table on the wide (full
// cross-product) shards: the same engine configuration measured with
// the table consulted and with the -impute-table=off escape hatch, with
// every returned row asserted bit-identical between the two. TableBytes
// is the table's cost in the shipped v3 bundle (encoded with minus
// encoded without).
func benchImpute(b *pipeline.Bundle, pa, pb platform.ID, workers int) (*imputeSection, error) {
	wb, err := wideIndexBundle(b, workers)
	if err != nil {
		return nil, err
	}
	if wb.ImputeTable == nil {
		return nil, fmt.Errorf("wide bundle carries no impute table — BuildBundleImputeTable built nothing")
	}
	na := len(wb.Views[pa])

	var withBuf, withoutBuf bytes.Buffer
	if err := pipeline.WriteBundle(&withBuf, b); err != nil {
		return nil, err
	}
	stripped := *b
	stripped.ImputeTable = nil
	if err := pipeline.WriteBundle(&withoutBuf, &stripped); err != nil {
		return nil, err
	}

	engOn, err := serve.NewEngineFromBundle(wb, workers)
	if err != nil {
		return nil, err
	}
	engOff, err := serve.NewEngineFromBundle(wb, workers)
	if err != nil {
		return nil, err
	}
	engOff.SetImputeTableEnabled(false)

	// Bit-identity sweep (doubles as warm-up for both engines): every
	// wide shard's top-5, table lookup vs live friend walk.
	matched, total := 0, 0
	for a := 0; a < na; a++ {
		on, err := engOn.TopK(pa, a, pb, 5)
		if err != nil {
			return nil, err
		}
		off, err := engOff.TopK(pa, a, pb, 5)
		if err != nil {
			return nil, err
		}
		if len(on) != len(off) {
			return nil, fmt.Errorf("impute table changed top-k shape for a=%d: %d vs %d rows", a, len(on), len(off))
		}
		for i := range on {
			total++
			if on[i] == off[i] {
				matched++
			}
		}
	}
	recall := 1.0
	if total > 0 {
		recall = float64(matched) / float64(total)
	}
	if recall != 1.0 {
		return nil, fmt.Errorf("impute table measured recall %.4f ≠ 1.0 — table-backed rows differ from the live path", recall)
	}

	var dst []serve.Scored
	on := testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if dst, err = engOn.TopKAppend(dst[:0], pa, i%na, pb, 5); err != nil {
				bb.Fatal(err)
			}
		}
	})
	off := testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if dst, err = engOff.TopKAppend(dst[:0], pa, i%na, pb, 5); err != nil {
				bb.Fatal(err)
			}
		}
	})

	sec := &imputeSection{
		TableEntries: wb.ImputeTable.NumEntries(),
		TableBytes:   withBuf.Len() - withoutBuf.Len(),
		WideShard:    float64(len(wb.Views[pb])),
		TableOn:      point(on),
		TableOff:     point(off),
		RecallAt5:    recall,
	}
	if sec.TableOn.NsPerOp > 0 {
		sec.Speedup = sec.TableOff.NsPerOp / sec.TableOn.NsPerOp
	}
	ih := engOn.ImputeHealth()
	if lookups := ih.TableHits + ih.TableMisses; lookups > 0 {
		sec.HitRatio = float64(ih.TableHits) / float64(lookups)
	}
	return sec, nil
}
