// Command hydra-servebench benchmarks the serving path end to end:
// cold-start (artifact + world rebuild vs self-contained bundle decode),
// single-pair score latency, top-k query latency over the sharded
// candidate index, and batched score throughput. It trains a small model
// through the staged pipeline, round-trips it through both codecs (so
// the measured paths are exactly what hydra-serve runs), verifies the
// two engines agree bit for bit, and drives the bundle engine with
// testing.Benchmark:
//
//	go run ./cmd/hydra-servebench                    # human-readable
//	go run ./cmd/hydra-servebench -json BENCH_PR4.json
//
// The -json snapshot gives the perf trajectory a mechanical data point
// per PR (see make bench-json).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/serve"
	"hydra/internal/synth"
)

// benchPoint is one benchmark's snapshot.
type benchPoint struct {
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// snapshot is the BENCH_PR4.json schema.
type snapshot struct {
	Bench      string  `json:"bench"`
	Persons    int     `json:"persons"`
	Workers    int     `json:"workers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Candidates int     `json:"candidates"`
	TopKShard  float64 `json:"mean_shard_size"`
	// Cold start: decoding + engine construction, best of three runs.
	// The world path re-systemizes the dataset (LDA included); the
	// bundle path only decodes precomputed state.
	ColdWorldMs  float64 `json:"cold_start_world_ms"`
	ColdBundleMs float64 `json:"cold_start_bundle_ms"`
	BundleBytes  int     `json:"bundle_bytes"`
	// Steady state, measured on the bundle-backed engine (the deployed
	// configuration; the world-backed engine is bit-identical and its
	// warm-path numbers match).
	Single benchPoint `json:"single_pair_score"`
	TopK   benchPoint `json:"topk5"`
	Batch  benchPoint `json:"batch_score"`
	// PairsPerSec is the batched-score throughput (candidate pairs scored
	// per second across the whole candidate set per op).
	PairsPerSec float64 `json:"batch_pairs_per_sec"`
}

func main() {
	var (
		persons  = flag.Int("persons", 100, "world size for the benchmark model")
		seed     = flag.Int64("seed", 1, "world and model seed")
		workers  = flag.Int("workers", 0, "engine worker pool (0 = all cores)")
		jsonPath = flag.String("json", "", "write the snapshot as JSON to this path (e.g. BENCH_PR4.json)")
	)
	flag.Parse()

	env, err := buildEnv(*persons, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}
	eng, cands := env.bundleEng, env.cands
	pa, pb := platform.Twitter, platform.Facebook
	fmt.Fprintf(os.Stderr, "engines ready: %d candidates over %d persons; workers=%d gomaxprocs=%d; bundle %d bytes\n",
		len(cands), *persons, *workers, runtime.GOMAXPROCS(0), len(env.bundleBytes))

	// Sanity: the bundle engine must serve the world engine's exact bits
	// before its numbers mean anything.
	worldScores, err := env.worldEng.ScoreBatch(pa, pb, cands)
	if err != nil {
		log.Fatal(err)
	}
	bundleScores, err := eng.ScoreBatch(pa, pb, cands)
	if err != nil {
		log.Fatal(err)
	}
	for i := range worldScores {
		if worldScores[i] != bundleScores[i] {
			log.Fatalf("engines disagree on pair %d: world %v vs bundle %v", i, worldScores[i], bundleScores[i])
		}
	}

	single := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cands[i%len(cands)]
			if _, err := eng.Score(pa, c[0], pb, c[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	as := aSide(cands)
	topk := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.TopK(pa, as[i%len(as)], pb, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	batch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.ScoreBatch(pa, pb, cands); err != nil {
				b.Fatal(err)
			}
		}
	})

	snap := snapshot{
		Bench:        "serve-bundle",
		Persons:      *persons,
		Workers:      *workers,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Candidates:   len(cands),
		TopKShard:    float64(len(cands)) / float64(len(as)),
		ColdWorldMs:  env.coldWorldMs,
		ColdBundleMs: env.coldBundleMs,
		BundleBytes:  len(env.bundleBytes),
		Single:       point(single),
		TopK:         point(topk),
		Batch:        point(batch),
	}
	if ns := point(batch).NsPerOp; ns > 0 {
		snap.PairsPerSec = float64(len(cands)) / (ns / 1e9)
	}

	fmt.Printf("cold start (world):  %12.1f ms   (artifact restore: systemize + index build)\n", snap.ColdWorldMs)
	fmt.Printf("cold start (bundle): %12.1f ms   (decode precomputed views/indexes, %d bytes)\n", snap.ColdBundleMs, snap.BundleBytes)
	fmt.Printf("single-pair score:   %12.0f ns/op  (%d ops)\n", snap.Single.NsPerOp, snap.Single.Ops)
	fmt.Printf("topk(5) query:       %12.0f ns/op  (%d ops, mean shard %.1f)\n", snap.TopK.NsPerOp, snap.TopK.Ops, snap.TopKShard)
	fmt.Printf("batched score:       %12.0f ns/op  (%d ops, %d pairs/op, %.0f pairs/s)\n",
		snap.Batch.NsPerOp, snap.Batch.Ops, snap.Candidates, snap.PairsPerSec)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// point converts a testing result.
func point(r testing.BenchmarkResult) benchPoint {
	return benchPoint{NsPerOp: float64(r.NsPerOp()), Ops: r.N}
}

// aSide lists the distinct A-side accounts of the candidate set in order.
func aSide(cands [][2]int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range cands {
		if !seen[c[0]] {
			seen[c[0]] = true
			out = append(out, c[0])
		}
	}
	return out
}

// benchEnv is everything the benchmark drives: both engines, the
// candidate list, and the measured cold-start times.
type benchEnv struct {
	worldEng     *serve.Engine
	bundleEng    *serve.Engine
	cands        [][2]int
	bundleBytes  []byte
	coldWorldMs  float64
	coldBundleMs float64
}

// coldStart returns the best-of-reps wall-clock milliseconds of fn —
// the startup paths dominate by orders of magnitude, so min-of-3 is
// plenty to shed scheduler noise.
func coldStart(reps int, fn func() error) (float64, error) {
	best := 0.0
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		if r == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// buildEnv trains a model on a synthetic world through the staged
// pipeline, persists it both ways (artifact and bundle), and measures
// both hydra-serve startup paths from their serialized forms — exactly
// what a process start pays, minus only the file read.
func buildEnv(persons int, seed int64, workers int) (*benchEnv, error) {
	world, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		return nil, err
	}
	var people []int
	for i := 0; i < persons/2; i++ {
		people = append(people, i)
	}
	sysState, err := pipeline.Systemize(world.Dataset, pipeline.SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: people,
		Lexicons:     features.Lexicons{Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment},
		FeatCfg:      features.DefaultConfig(seed),
	})
	if err != nil {
		return nil, err
	}
	rules := blocking.DefaultRules()
	rules.Workers = workers
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: rules,
		Label: core.LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: true, Seed: seed},
	})
	if err != nil {
		return nil, err
	}
	hcfg := core.DefaultConfig(seed)
	hcfg.Workers = workers
	fitted, err := pipeline.Fit(blocked, hcfg)
	if err != nil {
		return nil, err
	}
	art, err := fitted.Artifact()
	if err != nil {
		return nil, err
	}
	var abuf bytes.Buffer
	if err := pipeline.WriteArtifact(&abuf, art); err != nil {
		return nil, err
	}
	bundle, err := fitted.Bundle(workers)
	if err != nil {
		return nil, err
	}
	var bbuf bytes.Buffer
	if err := pipeline.WriteBundle(&bbuf, bundle); err != nil {
		return nil, err
	}
	var wbuf bytes.Buffer
	if err := platform.Encode(&wbuf, world.Dataset); err != nil {
		return nil, err
	}

	env := &benchEnv{bundleBytes: bbuf.Bytes()}
	env.coldWorldMs, err = coldStart(3, func() error {
		art2, err := pipeline.ReadArtifact(bytes.NewReader(abuf.Bytes()))
		if err != nil {
			return err
		}
		ds, err := pipeline.LoadWorld(bytes.NewReader(wbuf.Bytes()))
		if err != nil {
			return err
		}
		env.worldEng, err = serve.NewEngine(art2, ds, workers)
		return err
	})
	if err != nil {
		return nil, err
	}
	env.coldBundleMs, err = coldStart(3, func() error {
		b2, err := pipeline.ReadBundle(bytes.NewReader(bbuf.Bytes()))
		if err != nil {
			return err
		}
		env.bundleEng, err = serve.NewEngineFromBundle(b2, workers)
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, c := range blocked.Task.Blocks[0].Cands {
		env.cands = append(env.cands, [2]int{c.A, c.B})
	}
	// Warm both engines' pair caches so the steady-state numbers reflect
	// a long-lived server, not first-touch feature assembly.
	if _, err := env.worldEng.ScoreBatch(platform.Twitter, platform.Facebook, env.cands); err != nil {
		return nil, err
	}
	if _, err := env.bundleEng.ScoreBatch(platform.Twitter, platform.Facebook, env.cands); err != nil {
		return nil, err
	}
	return env, nil
}
