// Command hydra-loadgen drives the serving tier with concurrent load
// and reports throughput and latency percentiles. Three modes:
//
//   - Smoke (default): trains a small model in-process, serves it over
//     real loopback HTTP through both front-ends — a single mmap-backed
//     hydra-serve engine and a scatter-gather router over in-process
//     shards — and drives each for a short closed-loop burst. Wired
//     into `make ci` as bench-load so the harness cannot rot.
//
//   - External (-target): drives an already-running hydra-serve or
//     hydra-router at the given base URL.
//
//   - 50k bench (-bench-50k): builds a tiled ~50k-account bundle on
//     disk, measures cold start and resident memory for the decoded
//     and mapped engines in separate child processes (clean RSS), then
//     runs the closed-loop load against both front-ends and writes the
//     BENCH_PR9.json snapshot:
//
//     go run ./cmd/hydra-loadgen -bench-50k -prev BENCH_PR8.json -json BENCH_PR9.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/loadgen"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/serve"
	"hydra/internal/serve/router"
	"hydra/internal/synth"
)

func main() {
	var (
		target    = flag.String("target", "", "drive an external hydra-serve/hydra-router at this base URL instead of in-process servers")
		bench50k  = flag.Bool("bench-50k", false, "run the out-of-RAM serving benchmark on a tiled ~50k-account bundle and write -json")
		chaosMode = flag.Bool("chaos", false, "run the chaos certification scripts against live loopback processes and write -json (e.g. BENCH_PR10.json)")
		jsonPath  = flag.String("json", "", "write the benchmark snapshot to this path (e.g. BENCH_PR9.json)")
		prevPath  = flag.String("prev", "", "embed this previous snapshot's headline numbers as a before block (e.g. BENCH_PR8.json)")
		dir       = flag.String("dir", "bench50k", "cache directory for the tiled benchmark bundle")
		accounts  = flag.Int("accounts", 50000, "total account count of the tiled bundle (split across the platforms)")
		candsA    = flag.Int("cands-per-a", 64, "mean candidate-set size per A-side account in the tiled indexes")
		persons   = flag.Int("persons", 60, "world size of the trained base model")
		seed      = flag.Int64("seed", 1, "seed for the base model and the query streams")
		workers   = flag.Int("workers", 0, "engine worker pool (0 = all cores)")
		clients   = flag.Int("clients", 8, "concurrent load clients")
		duration  = flag.Duration("duration", 0, "measured window per phase (default 1s smoke, 4s bench)")
		rate      = flag.Float64("rate", 0, "open-loop target rate in requests/sec (0 = closed loop)")
		topkW     = flag.Int("topk", 6, "mix weight: GET /topk")
		scoreW    = flag.Int("score", 3, "mix weight: POST /score, one pair")
		batchW    = flag.Int("batch", 1, "mix weight: POST /score, 16-pair batch")
		k         = flag.Int("k", 5, "top-k depth")
		numA      = flag.Int("na", 0, "A-side account count (external mode; required with -target)")
		numB      = flag.Int("nb", 0, "B-side account count (external mode; defaults to -na)")
		pa        = flag.String("pa", string(platform.Twitter), "A-side platform id")
		pb        = flag.String("pb", string(platform.Facebook), "B-side platform id")
		shards    = flag.Int("router-shards", 4, "in-process shard count behind the router phase")

		// Internal: cold-start measurement child (forked by -bench-50k so
		// each engine's RSS is read in a process that built nothing else).
		measureCold = flag.String("measure-cold", "", "internal: measure cold start in this process (decoded|mapped); requires -bundle")
		bundlePath  = flag.String("bundle", "", "internal: bundle file for -measure-cold")
		touch       = flag.Int("touch", 64, "top-k queries issued after cold start to touch a working set (-bench-50k and -measure-cold)")
	)
	flag.Parse()

	if *measureCold != "" {
		if err := runMeasureCold(*measureCold, *bundlePath, *touch, *k, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}

	mix := loadgen.Mix{TopK: *topkW, Score: *scoreW, Batch: *batchW}
	switch {
	case *target != "":
		if *numA <= 0 {
			log.Fatal("hydra-loadgen: -target mode needs -na (the A-side account count)")
		}
		nb := *numB
		if nb <= 0 {
			nb = *numA
		}
		if *duration == 0 {
			*duration = 4 * time.Second
		}
		res, err := loadgen.Run(loadgen.Config{
			BaseURL: *target, Clients: *clients, Duration: *duration, Rate: *rate,
			Mix: mix, PA: *pa, PB: *pb, NumA: *numA, NumB: nb, K: *k, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		printResult(*target, res)
	case *chaosMode:
		if *duration == 0 {
			*duration = 2 * time.Second
		}
		if err := runChaos(*persons, *seed, *workers, *clients, *duration, *k, *jsonPath); err != nil {
			log.Fatal(err)
		}
	case *bench50k:
		if *duration == 0 {
			*duration = 4 * time.Second
		}
		if err := runBench50k(*dir, *accounts, *candsA, *persons, *seed, *workers,
			*clients, *duration, *rate, mix, *k, *touch, *shards, *jsonPath, *prevPath); err != nil {
			log.Fatal(err)
		}
	default:
		if *duration == 0 {
			*duration = time.Second
		}
		if err := runSmoke(*persons, *seed, *workers, *clients, *duration, mix, *k, *shards); err != nil {
			log.Fatal(err)
		}
	}
}

// printResult renders one phase's outcome for humans.
func printResult(label string, r loadgen.Result) {
	fmt.Printf("%-22s %8.0f req/s  (%d requests, %d clients, %s loop, %d errors)\n",
		label+":", r.Throughput, r.Requests, r.Clients, r.Mode, r.Errors)
	fmt.Printf("%-22s p50 %.3f ms  p99 %.3f ms  p999 %.3f ms  max %.3f ms\n",
		"", r.P50Ms, r.P99Ms, r.P999Ms, r.MaxMs)
}

// serveHTTP exposes a handler on an ephemeral loopback port; the
// returned stop function shuts the server down.
func serveHTTP(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// buildTrainedBundle trains a small model through the staged pipeline
// (the hydra-servebench recipe) and packs it as a serving bundle.
func buildTrainedBundle(persons int, seed int64, workers int) (*pipeline.Bundle, error) {
	world, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		return nil, err
	}
	var people []int
	for i := 0; i < persons/2; i++ {
		people = append(people, i)
	}
	sysState, err := pipeline.Systemize(world.Dataset, pipeline.SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: people,
		Lexicons:     features.Lexicons{Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment},
		FeatCfg:      features.DefaultConfig(seed),
	})
	if err != nil {
		return nil, err
	}
	rules := blocking.DefaultRules()
	rules.Workers = workers
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: rules,
		Label: core.LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: true, Seed: seed},
	})
	if err != nil {
		return nil, err
	}
	hcfg := core.DefaultConfig(seed)
	hcfg.Workers = workers
	fitted, err := pipeline.Fit(blocked, hcfg)
	if err != nil {
		return nil, err
	}
	return fitted.Bundle(workers)
}

// buildRouterHandler splits the bundle into in-process shard engines
// and fronts them with the scatter-gather router's HTTP handler.
func buildRouterHandler(b *pipeline.Bundle, count, workers int, seed int64) (http.Handler, func() []*serve.Engine, error) {
	subs, err := pipeline.SplitBundle(b, count, uint64(seed)+6, 1)
	if err != nil {
		return nil, nil, err
	}
	engines := make([]*serve.Engine, count)
	backends := make([][]router.Backend, count)
	for i, sb := range subs {
		eng, err := serve.NewEngineFromBundle(sb, workers)
		if err != nil {
			return nil, nil, err
		}
		engines[i] = eng
		backends[i] = []router.Backend{&router.Local{Src: eng, Label: fmt.Sprintf("local-%d", i)}}
	}
	rt, err := router.New(backends, router.Options{})
	if err != nil {
		return nil, nil, err
	}
	if err := rt.Refresh(context.Background()); err != nil {
		return nil, nil, err
	}
	return rt.Handler(), func() []*serve.Engine { return engines }, nil
}

// topkChecksum hashes the exact bits of top-k answers over the first
// touch A-side accounts — the cross-backing identity probe the bench
// compares between the decoded and mapped child processes.
func topkChecksum(eng *serve.Engine, pa, pb platform.ID, na, touch, k int) (string, error) {
	h := fnv.New64a()
	var dst []serve.Scored
	var err error
	if touch > na {
		touch = na
	}
	for a := 0; a < touch; a++ {
		if dst, err = eng.TopKAppend(dst[:0], pa, a, pb, k); err != nil {
			return "", err
		}
		for _, sc := range dst {
			fmt.Fprintf(h, "%d:%d:%x:%v;", a, sc.B, math.Float64bits(sc.Score), sc.Linked)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// rssBytes reads the process's resident set from /proc/self/statm
// (0 where proc is unavailable).
func rssBytes() int64 {
	raw, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	var size, resident int64
	if _, err := fmt.Sscan(string(raw), &size, &resident); err != nil {
		return 0
	}
	return resident * int64(os.Getpagesize())
}

// coldReport is the child → parent wire format of -measure-cold.
type coldReport struct {
	Kind         string  `json:"kind"`
	OpenMs       float64 `json:"open_ms"`
	TouchMs      float64 `json:"touch_ms"`
	RSSOpenBytes int64   `json:"rss_open_bytes"`
	RSSBytes     int64   `json:"rss_bytes"`
	// RSSDroppedBytes is the resident set after DropMappedCaches — what a
	// mapped engine falls back to under memory pressure (unchanged for a
	// decoded engine, which has nothing to discard).
	RSSDroppedBytes int64  `json:"rss_dropped_bytes"`
	Accounts        int    `json:"accounts"`
	Checksum        string `json:"checksum"`
}

// runMeasureCold is the forked child: build one engine flavor from the
// bundle file, report cold-start time, post-touch RSS and the top-k
// checksum as one JSON line on stdout.
func runMeasureCold(kind, path string, touch, k, workers int) error {
	if path == "" {
		return fmt.Errorf("hydra-loadgen: -measure-cold needs -bundle")
	}
	var (
		eng *serve.Engine
		err error
	)
	t0 := time.Now()
	switch kind {
	case "decoded":
		var b *pipeline.Bundle
		if b, err = pipeline.LoadBundle(path); err != nil {
			return err
		}
		if eng, err = serve.NewEngineFromBundle(b, workers); err != nil {
			return err
		}
	case "mapped":
		var mb *pipeline.MappedBundle
		if mb, err = pipeline.OpenBundleMapped(path, pipeline.MapOptions{}); err != nil {
			return err
		}
		if eng, err = serve.NewEngineFromMapped(mb, workers); err != nil {
			mb.Close()
			return err
		}
	default:
		return fmt.Errorf("hydra-loadgen: -measure-cold must be decoded or mapped, got %q", kind)
	}
	openMs := float64(time.Since(t0).Nanoseconds()) / 1e6
	// Scrub decode garbage before each RSS read so the number is live
	// memory, not GC headroom (the parent runs us with
	// GODEBUG=madvdontneed=1 so freed pages actually leave the RSS).
	debug.FreeOSMemory()
	rssOpen := rssBytes()

	pp := eng.Pairs()
	if len(pp) == 0 {
		return fmt.Errorf("hydra-loadgen: bundle has no indexed pairs")
	}
	pa, pb := pp[0][0], pp[0][1]
	na := eng.NumAccounts(pa)
	t1 := time.Now()
	sum, err := topkChecksum(eng, pa, pb, na, touch, k)
	if err != nil {
		return err
	}
	touchMs := float64(time.Since(t1).Nanoseconds()) / 1e6
	debug.FreeOSMemory()
	rep := coldReport{
		Kind:         kind,
		OpenMs:       openMs,
		TouchMs:      touchMs,
		RSSOpenBytes: rssOpen,
		RSSBytes:     rssBytes(),
		Accounts:     na,
		Checksum:     sum,
	}
	eng.DropMappedCaches()
	debug.FreeOSMemory()
	rep.RSSDroppedBytes = rssBytes()
	return json.NewEncoder(os.Stdout).Encode(rep)
}

// forkMeasureCold runs one -measure-cold child and parses its report.
func forkMeasureCold(kind, path string, touch, k, workers int) (*coldReport, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(self,
		"-measure-cold", kind, "-bundle", path,
		"-touch", fmt.Sprint(touch), "-k", fmt.Sprint(k), "-workers", fmt.Sprint(workers))
	// madvdontneed makes freed heap leave the RSS immediately, so the
	// child's statm readings mean live memory.
	cmd.Env = append(os.Environ(), "GODEBUG=madvdontneed=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("measure-cold %s child: %w", kind, err)
	}
	var rep coldReport
	if err := json.Unmarshal(out, &rep); err != nil {
		return nil, fmt.Errorf("measure-cold %s child output %q: %w", kind, out, err)
	}
	return &rep, nil
}

// runSmoke is the ci gate: small trained bundle, mapped engine over
// loopback HTTP, router over in-process shards, a short closed-loop
// burst each, with the mapped-vs-heap checksum asserted before any
// load runs.
func runSmoke(persons int, seed int64, workers, clients int, duration time.Duration, mix loadgen.Mix, k, shardCount int) error {
	base, err := buildTrainedBundle(persons, seed, workers)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hydra-loadgen")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bundle.bin")
	if err := pipeline.SaveBundle(path, base); err != nil {
		return err
	}

	mb, err := pipeline.OpenBundleMapped(path, pipeline.MapOptions{})
	if err != nil {
		return err
	}
	mapped, err := serve.NewEngineFromMapped(mb, workers)
	if err != nil {
		mb.Close()
		return err
	}
	defer mapped.Close()
	heap, err := serve.NewEngineFromBundle(base, workers)
	if err != nil {
		return err
	}
	pp := mapped.Pairs()[0]
	na := mapped.NumAccounts(pp[0])
	nb := mapped.NumAccounts(pp[1])
	sumM, err := topkChecksum(mapped, pp[0], pp[1], na, na, k)
	if err != nil {
		return err
	}
	sumH, err := topkChecksum(heap, pp[0], pp[1], na, na, k)
	if err != nil {
		return err
	}
	if sumM != sumH {
		return fmt.Errorf("mapped and heap engines disagree: checksum %s vs %s", sumM, sumH)
	}
	fmt.Fprintf(os.Stderr, "mapped/heap top-k checksums agree (%s) over %d accounts; mmap=%v\n", sumM, na, mb.Mapped())

	serveURL, stopServe, err := serveHTTP(mapped.Handler())
	if err != nil {
		return err
	}
	defer stopServe()
	res, err := loadgen.Run(loadgen.Config{
		BaseURL: serveURL, Clients: clients, Duration: duration,
		Mix: mix, PA: string(pp[0]), PB: string(pp[1]), NumA: na, NumB: nb, K: k, Seed: seed,
	})
	if err != nil {
		return err
	}
	printResult("serve (mmap)", res)
	if res.Errors > 0 {
		return fmt.Errorf("serve phase saw %d request errors", res.Errors)
	}

	rtHandler, _, err := buildRouterHandler(base, shardCount, workers, seed)
	if err != nil {
		return err
	}
	routerURL, stopRouter, err := serveHTTP(rtHandler)
	if err != nil {
		return err
	}
	defer stopRouter()
	rres, err := loadgen.Run(loadgen.Config{
		BaseURL: routerURL, Clients: clients, Duration: duration,
		Mix: mix, PA: string(pp[0]), PB: string(pp[1]), NumA: na, NumB: nb, K: k, Seed: seed + 1,
	})
	if err != nil {
		return err
	}
	printResult(fmt.Sprintf("router (%d shards)", shardCount), rres)
	if rres.Errors > 0 {
		return fmt.Errorf("router phase saw %d request errors", rres.Errors)
	}
	return nil
}

// snapshot is the BENCH_PR9.json schema.
type snapshot struct {
	Bench               string  `json:"bench"`
	Accounts            int     `json:"accounts"`
	AccountsPerPlatform int     `json:"accounts_per_platform"`
	CandsPerA           int     `json:"cands_per_a"`
	Clients             int     `json:"clients"`
	GoMaxProcs          int     `json:"gomaxprocs"`
	BundleBytes         int64   `json:"bundle_bytes"`
	ColdDecodedMs       float64 `json:"cold_start_decoded_ms"`
	ColdMappedMs        float64 `json:"cold_start_mapped_ms"`
	ColdSpeedup         float64 `json:"cold_start_speedup"`
	RSSOpenDecodedBytes int64   `json:"rss_open_decoded_bytes"`
	RSSOpenMappedBytes  int64   `json:"rss_open_mapped_bytes"`
	RSSDecodedBytes     int64   `json:"rss_decoded_bytes"`
	RSSMappedBytes      int64   `json:"rss_mapped_bytes"`
	RSSDroppedMapped    int64   `json:"rss_mapped_after_drop_bytes"`
	MappedRSSOverBundle float64 `json:"mapped_rss_over_bundle"`
	TouchedAccounts     int     `json:"touched_accounts"`
	TouchDecodedMs      float64 `json:"touch_decoded_ms"`
	TouchMappedMs       float64 `json:"touch_mapped_ms"`
	Checksum            string  `json:"topk_checksum"`

	Serve       loadgen.Result        `json:"serve_closed_loop"`
	ServeMapped *pipeline.MappedStats `json:"serve_mapped_stats,omitempty"`

	RouterShards int            `json:"router_shards"`
	Router       loadgen.Result `json:"router_closed_loop"`

	Before *beforeBlock `json:"before,omitempty"`
}

// beforeBlock lifts the PR 8 snapshot's headline numbers so before and
// after live in one file.
type beforeBlock struct {
	Source        string  `json:"source"`
	ColdBundleMs  float64 `json:"cold_start_bundle_ms"`
	BundleBytes   int     `json:"bundle_bytes"`
	SingleNsPerOp float64 `json:"single_pair_score_ns_per_op"`
	TopK5NsPerOp  float64 `json:"topk5_ns_per_op"`
	RouterNsPerOp float64 `json:"router_topk5_ns_per_op"`
}

func loadBefore(path string) (*beforeBlock, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var old struct {
		ColdBundleMs float64 `json:"cold_start_bundle_ms"`
		BundleV3     int     `json:"bundle_v3_bytes"`
		Single       struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"single_pair_score"`
		TopK struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"topk5"`
		Router struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"router_topk5"`
	}
	if err := json.Unmarshal(raw, &old); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return &beforeBlock{
		Source:        path,
		ColdBundleMs:  old.ColdBundleMs,
		BundleBytes:   old.BundleV3,
		SingleNsPerOp: old.Single.NsPerOp,
		TopK5NsPerOp:  old.TopK.NsPerOp,
		RouterNsPerOp: old.Router.NsPerOp,
	}, nil
}

// runBench50k is the out-of-RAM serving benchmark.
func runBench50k(dir string, accounts, candsA, persons int, seed int64, workers, clients int,
	duration time.Duration, rate float64, mix loadgen.Mix, k, touch, shardCount int, jsonPath, prevPath string) error {

	base, err := buildTrainedBundle(persons, seed, workers)
	if err != nil {
		return err
	}
	perPlat := accounts / len(base.Views)
	tiled, err := pipeline.TiledBundle(base, perPlat, candsA, uint64(seed))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("bundle%dk.bin", accounts/1000))
	if err := pipeline.SaveBundle(path, tiled); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tiled bundle: %d accounts over %d platforms, ~%d cands/account, %d bytes at %s\n",
		perPlat*len(base.Views), len(base.Views), candsA, info.Size(), path)

	decoded, err := forkMeasureCold("decoded", path, touch, k, workers)
	if err != nil {
		return err
	}
	mapped, err := forkMeasureCold("mapped", path, touch, k, workers)
	if err != nil {
		return err
	}
	if decoded.Checksum != mapped.Checksum {
		return fmt.Errorf("decoded and mapped engines disagree: checksum %s vs %s", decoded.Checksum, mapped.Checksum)
	}

	snap := snapshot{
		Bench:               "out-of-ram-serving",
		Accounts:            perPlat * len(base.Views),
		AccountsPerPlatform: perPlat,
		CandsPerA:           candsA,
		Clients:             clients,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		BundleBytes:         info.Size(),
		ColdDecodedMs:       decoded.OpenMs,
		ColdMappedMs:        mapped.OpenMs,
		TouchDecodedMs:      decoded.TouchMs,
		TouchMappedMs:       mapped.TouchMs,
		RSSOpenDecodedBytes: decoded.RSSOpenBytes,
		RSSOpenMappedBytes:  mapped.RSSOpenBytes,
		RSSDecodedBytes:     decoded.RSSBytes,
		RSSMappedBytes:      mapped.RSSBytes,
		RSSDroppedMapped:    mapped.RSSDroppedBytes,
		TouchedAccounts:     touch,
		Checksum:            decoded.Checksum,
		RouterShards:        shardCount,
	}
	if mapped.OpenMs > 0 {
		snap.ColdSpeedup = decoded.OpenMs / mapped.OpenMs
	}
	if info.Size() > 0 {
		snap.MappedRSSOverBundle = float64(mapped.RSSBytes) / float64(info.Size())
	}

	// Serve phase: the mapped engine under concurrent load.
	mb, err := pipeline.OpenBundleMapped(path, pipeline.MapOptions{})
	if err != nil {
		return err
	}
	eng, err := serve.NewEngineFromMapped(mb, workers)
	if err != nil {
		mb.Close()
		return err
	}
	pp := eng.Pairs()[0]
	serveURL, stopServe, err := serveHTTP(eng.Handler())
	if err != nil {
		return err
	}
	snap.Serve, err = loadgen.Run(loadgen.Config{
		BaseURL: serveURL, Clients: clients, Duration: duration, Rate: rate,
		Mix: mix, PA: string(pp[0]), PB: string(pp[1]), NumA: perPlat, NumB: perPlat, K: k, Seed: seed,
	})
	stopServe()
	if err != nil {
		return err
	}
	snap.ServeMapped = eng.MappedStats()
	if err := eng.Close(); err != nil {
		return err
	}
	if snap.Serve.Errors > 0 {
		return fmt.Errorf("serve phase saw %d request errors", snap.Serve.Errors)
	}

	// Router phase: scatter-gather over in-process heap shards split
	// from the tiled bundle (shared numerics keep this cheap in RAM).
	rtHandler, _, err := buildRouterHandler(tiled, shardCount, workers, seed)
	if err != nil {
		return err
	}
	routerURL, stopRouter, err := serveHTTP(rtHandler)
	if err != nil {
		return err
	}
	snap.Router, err = loadgen.Run(loadgen.Config{
		BaseURL: routerURL, Clients: clients, Duration: duration, Rate: rate,
		Mix: mix, PA: string(pp[0]), PB: string(pp[1]), NumA: perPlat, NumB: perPlat, K: k, Seed: seed + 1,
	})
	stopRouter()
	if err != nil {
		return err
	}
	if snap.Router.Errors > 0 {
		return fmt.Errorf("router phase saw %d request errors", snap.Router.Errors)
	}

	if prevPath != "" {
		if snap.Before, err = loadBefore(prevPath); err != nil {
			return err
		}
	}

	fmt.Printf("bundle:             %12d bytes (%d accounts, ~%d cands/account)\n", snap.BundleBytes, snap.Accounts, snap.CandsPerA)
	fmt.Printf("cold start decoded: %12.1f ms   (RSS %d MB at open, %d MB after %d-account touch)\n",
		snap.ColdDecodedMs, snap.RSSOpenDecodedBytes>>20, snap.RSSDecodedBytes>>20, touch)
	fmt.Printf("cold start mapped:  %12.1f ms   (RSS %d MB at open, %d MB after touch, %d MB after cache drop) — %.1fx faster, RSS %.2fx of bundle\n",
		snap.ColdMappedMs, snap.RSSOpenMappedBytes>>20, snap.RSSMappedBytes>>20, snap.RSSDroppedMapped>>20,
		snap.ColdSpeedup, snap.MappedRSSOverBundle)
	printResult("serve (mmap)", snap.Serve)
	if s := snap.ServeMapped; s != nil {
		fmt.Printf("%-22s resident views %d/%d, friends %d/%d, index rows %d/%d; vecs aliased %d copied %d\n",
			"", s.ResidentViews, s.TotalViews, s.ResidentFriends, s.TotalFriends, s.ResidentRows, s.TotalRows,
			s.AliasedVecs, s.CopiedVecs)
	}
	printResult(fmt.Sprintf("router (%d shards)", shardCount), snap.Router)

	if snap.ColdSpeedup < 10 {
		return fmt.Errorf("mapped cold start is only %.1fx faster than full decode (want ≥ 10x)", snap.ColdSpeedup)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}
