package main

// The -chaos mode: the certification suite's fault scripts driven
// against live loopback processes — real HTTP servers per replica, the
// scatter-gather router in front, seeded fault injection at the wire —
// with the answers swept against the fault-free single engine after
// every phase. Zero wrong answers is a hard gate; the phase latencies,
// hedge outcomes, breaker traffic and shed counts land in the JSON
// snapshot (BENCH_PR10.json).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"time"

	"hydra/internal/faults"
	"hydra/internal/loadgen"
	"hydra/internal/obs"
	"hydra/internal/pipeline"
	"hydra/internal/serve"
	"hydra/internal/serve/router"
)

// chaosCluster is one live deployment: per-replica HTTP servers over
// shard engines (each optionally wrapped with a fault middleware), the
// router over HTTP backends, and its own front-end server.
type chaosCluster struct {
	rt       *router.Router
	frontURL string
	stops    []func()
}

func (c *chaosCluster) Close() {
	for i := len(c.stops) - 1; i >= 0; i-- {
		c.stops[i]()
	}
}

// startChaosCluster serves each shard engine on two loopback replicas,
// wrapping replica handlers via wrap (nil = clean), and fronts them
// with a router configured by opts. front wraps the router's own
// handler (admission gates go there).
func startChaosCluster(engines []*serve.Engine, opts router.Options,
	wrap func(shard, replica int, h http.Handler) http.Handler,
	front func(h http.Handler) http.Handler) (*chaosCluster, error) {

	c := &chaosCluster{}
	const replicas = 2
	backends := make([][]router.Backend, len(engines))
	for si, eng := range engines {
		for ri := 0; ri < replicas; ri++ {
			h := http.Handler(eng.Handler())
			if wrap != nil {
				h = wrap(si, ri, h)
			}
			url, stop, err := serveHTTP(h)
			if err != nil {
				c.Close()
				return nil, err
			}
			c.stops = append(c.stops, stop)
			backends[si] = append(backends[si], &router.HTTP{URL: url})
		}
	}
	rt, err := router.New(backends, opts)
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := rt.Refresh(context.Background()); err != nil {
		c.Close()
		return nil, err
	}
	h := http.Handler(rt.Handler())
	if front != nil {
		h = front(h)
	}
	url, stop, err := serveHTTP(h)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.stops = append(c.stops, stop)
	c.rt, c.frontURL = rt, url
	return c, nil
}

// sweepAnswers queries every A-side account through the cluster's front
// door and diffs each answer against the single engine: exact matches,
// truthfully-degraded responses (rows = single minus failed shards) and
// wrong answers are counted separately. Wrong must stay zero under
// every script.
func sweepAnswers(url string, single *serve.Engine, desc *pipeline.ShardDesc, na, k int) (exact, degraded, wrong int, err error) {
	pp := single.Pairs()[0]
	for a := 0; a < na; a++ {
		resp, err := http.Get(fmt.Sprintf("%s/topk?pa=%s&a=%d&pb=%s&k=%d", url, pp[0], a, pp[1], k))
		if err != nil {
			return 0, 0, 0, err
		}
		var out router.TopKResult
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			wrong++ // a hard failure during a sweep is an availability bug here
			continue
		}
		if decErr != nil {
			return 0, 0, 0, decErr
		}
		if !out.Degraded {
			want, err := single.TopK(pp[0], a, pp[1], k)
			if err != nil {
				return 0, 0, 0, err
			}
			if equalScored(out.Results, want) {
				exact++
			} else {
				wrong++
			}
			continue
		}
		failed := make(map[int]bool, len(out.FailedShards))
		for _, si := range out.FailedShards {
			failed[si] = true
		}
		full, err := single.TopK(pp[0], a, pp[1], 0)
		if err != nil {
			return 0, 0, 0, err
		}
		var want []serve.Scored
		for _, s := range full {
			if !failed[desc.ShardOf(pp[1], s.B)] {
				want = append(want, s)
			}
		}
		if len(want) > k {
			want = want[:k]
		}
		if equalScored(out.Results, want) {
			degraded++
		} else {
			wrong++
		}
	}
	return exact, degraded, wrong, nil
}

func equalScored(got, want []serve.Scored) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

// chaosPhase is one scripted phase's row in the snapshot.
type chaosPhase struct {
	Name     string         `json:"name"`
	Load     loadgen.Result `json:"load"`
	Exact    int            `json:"sweep_exact"`
	Degraded int            `json:"sweep_degraded"`
	Wrong    int            `json:"sweep_wrong"`

	DeadReplicaCalls uint64  `json:"dead_replica_calls,omitempty"`
	P99Ratio         float64 `json:"p99_over_faultfree,omitempty"`
	HedgeFired       uint64  `json:"hedge_fired,omitempty"`
	HedgeWon         uint64  `json:"hedge_won,omitempty"`
	HedgeCancelled   uint64  `json:"hedge_cancelled,omitempty"`
	FailFast         uint64  `json:"breaker_failfast,omitempty"`
	RetryExhausted   uint64  `json:"retry_budget_exhausted,omitempty"`
	Shed             uint64  `json:"shed,omitempty"`
	MaxInflight      int     `json:"max_inflight,omitempty"`
}

// chaosSnapshot is the BENCH_PR10.json schema.
type chaosSnapshot struct {
	Bench      string       `json:"bench"`
	Seed       int64        `json:"seed"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Clients    int          `json:"clients"`
	Shards     int          `json:"shards"`
	Replicas   int          `json:"replicas"`
	Accounts   int          `json:"accounts"`
	Phases     []chaosPhase `json:"phases"`
	Wrong      int          `json:"wrong_answers_total"`
}

// runChaos drives the chaos scripts against live processes. Phases:
// fault-free baseline, preferred replica hard-down (breaker + failover,
// steady-state p99 must hold within 2x of fault-free), seeded straggler
// tail (tied hedging covers it), and overload against a bounded
// admission gate (sheds, never wrong answers).
func runChaos(persons int, seed int64, workers, clients int, duration time.Duration, k int, jsonPath string) error {
	bundle, err := buildTrainedBundle(persons, seed, workers)
	if err != nil {
		return err
	}
	single, err := serve.NewEngineFromBundle(bundle, workers)
	if err != nil {
		return err
	}
	pp := single.Pairs()[0]
	na := single.NumAccounts(pp[0])

	const shardCount = 2
	subs, err := pipeline.SplitBundle(bundle, shardCount, uint64(seed)+6, 1)
	if err != nil {
		return err
	}
	engines := make([]*serve.Engine, shardCount)
	for i, sb := range subs {
		if engines[i], err = serve.NewEngineFromBundle(sb, workers); err != nil {
			return err
		}
	}
	desc := engines[0].ShardDesc()
	mix := loadgen.Mix{TopK: 1} // p99 comparisons are per-endpoint; keep one

	snap := chaosSnapshot{
		Bench: "chaos-serving", Seed: seed, GoMaxProcs: runtime.GOMAXPROCS(0),
		Clients: clients, Shards: shardCount, Replicas: 2, Accounts: na,
	}
	phase := func(name string, c *chaosCluster, loadSeed int64) (*chaosPhase, error) {
		res, err := loadgen.Run(loadgen.Config{
			BaseURL: c.frontURL, Clients: clients, Duration: duration,
			Mix: mix, PA: string(pp[0]), PB: string(pp[1]), NumA: na, NumB: na, K: k, Seed: loadSeed,
		})
		if err != nil {
			return nil, err
		}
		exact, degraded, wrong, err := sweepAnswers(c.frontURL, single, desc, na, k)
		if err != nil {
			return nil, err
		}
		p := &chaosPhase{Name: name, Load: res, Exact: exact, Degraded: degraded, Wrong: wrong}
		st := c.rt.RobustStats()
		p.HedgeFired, p.HedgeWon, p.HedgeCancelled = st.HedgeFired, st.HedgeWon, st.HedgeCancelled
		p.FailFast, p.RetryExhausted = st.FailFast, st.RetryExhausted
		snap.Phases = append(snap.Phases, *p)
		snap.Wrong += wrong
		fmt.Printf("chaos %-16s %8.0f req/s  p50 %.3f ms  p99 %.3f ms  (%d errors; sweep: %d exact, %d degraded, %d wrong)\n",
			name+":", res.Throughput, res.P50Ms, res.P99Ms, res.Errors, exact, degraded, wrong)
		return &snap.Phases[len(snap.Phases)-1], nil
	}

	// Phase 1: fault-free baseline.
	clean, err := startChaosCluster(engines, router.Options{}, nil, nil)
	if err != nil {
		return err
	}
	base, err := phase("fault-free", clean, seed)
	clean.Close()
	if err != nil {
		return err
	}
	if base.Load.Errors > 0 || base.Degraded > 0 {
		return fmt.Errorf("fault-free phase saw %d errors, %d degraded answers", base.Load.Errors, base.Degraded)
	}

	// Phase 2: shard 0's preferred replica hard-down at the wire. The
	// breaker must cap its probe traffic (recorded from the injector's
	// call counter) and steady-state p99 must hold within 2x fault-free.
	deadInj := faults.NewInjector(faults.Script{Seed: seed, Rules: []faults.Rule{
		{Target: "shard0-r0", Error: true},
	}})
	down, err := startChaosCluster(engines, router.Options{},
		func(si, ri int, h http.Handler) http.Handler {
			if si == 0 && ri == 0 {
				return faults.Middleware(h, deadInj, "shard0-r0")
			}
			return h
		}, nil)
	if err != nil {
		return err
	}
	downP, err := phase("preferred-down", down, seed+1)
	down.Close()
	if err != nil {
		return err
	}
	downP.DeadReplicaCalls = deadInj.Calls("shard0-r0")
	if base.Load.P99Ms > 0 {
		downP.P99Ratio = downP.Load.P99Ms / base.Load.P99Ms
	}
	snap.Phases[len(snap.Phases)-1] = *downP
	fmt.Printf("chaos %-16s dead replica saw %d calls over %d requests; p99 %.2fx fault-free\n",
		"preferred-down:", downP.DeadReplicaCalls, downP.Load.Requests+na, downP.P99Ratio)
	if downP.Wrong > 0 {
		return fmt.Errorf("preferred-down phase produced %d wrong answers", downP.Wrong)
	}
	if downP.P99Ratio > 2.0 {
		return fmt.Errorf("preferred-down p99 is %.2fx fault-free (budget: 2x)", downP.P99Ratio)
	}

	// Phase 3: seeded straggler tail on one replica of each shard, tied
	// hedging on a tight trigger covers it.
	stragInj := faults.NewInjector(faults.Script{Seed: seed, Rules: []faults.Rule{
		{Target: "shard0-r0", P: 0.3, Latency: 40 * time.Millisecond},
		{Target: "shard1-r0", P: 0.3, Latency: 40 * time.Millisecond},
	}})
	strag, err := startChaosCluster(engines, router.Options{HedgeAfter: 3 * time.Millisecond},
		func(si, ri int, h http.Handler) http.Handler {
			if ri == 0 {
				return faults.Middleware(h, stragInj, fmt.Sprintf("shard%d-r0", si))
			}
			return h
		}, nil)
	if err != nil {
		return err
	}
	stragP, err := phase("straggler-tail", strag, seed+2)
	strag.Close()
	if err != nil {
		return err
	}
	if stragP.Wrong > 0 {
		return fmt.Errorf("straggler phase produced %d wrong answers", stragP.Wrong)
	}
	if stragP.HedgeFired == 0 {
		return fmt.Errorf("straggler phase never fired a hedge")
	}

	// Phase 4: overload against a bounded admission gate — overflow is
	// shed with 429s (loadgen counts them as errors), answers that get
	// through stay exact.
	maxInflight := clients / 2
	if maxInflight < 1 {
		maxInflight = 1
	}
	adm := obs.NewAdmission(maxInflight)
	over, err := startChaosCluster(engines, router.Options{}, nil, adm.Middleware)
	if err != nil {
		return err
	}
	// Inflate pressure: double the clients against half the capacity.
	res, err := loadgen.Run(loadgen.Config{
		BaseURL: over.frontURL, Clients: clients * 2, Duration: duration,
		Mix: mix, PA: string(pp[0]), PB: string(pp[1]), NumA: na, NumB: na, K: k, Seed: seed + 3,
	})
	if err != nil {
		over.Close()
		return err
	}
	exact, degraded, wrong, err := sweepAnswers(over.frontURL, single, desc, na, k)
	over.Close()
	if err != nil {
		return err
	}
	_, _, shed := adm.Stats()
	overP := chaosPhase{Name: "overload", Load: res, Exact: exact, Degraded: degraded, Wrong: wrong,
		Shed: shed, MaxInflight: maxInflight}
	snap.Phases = append(snap.Phases, overP)
	snap.Wrong += wrong
	fmt.Printf("chaos %-16s %8.0f req/s  p99 %.3f ms  (%d shed of %d requests; sweep: %d exact, %d wrong)\n",
		"overload:", res.Throughput, res.P99Ms, shed, res.Requests, exact, wrong)
	if wrong > 0 {
		return fmt.Errorf("overload phase produced %d wrong answers", wrong)
	}

	if snap.Wrong > 0 {
		return fmt.Errorf("chaos run produced %d wrong answers", snap.Wrong)
	}
	fmt.Printf("chaos: 0 wrong answers across %d phases\n", len(snap.Phases))

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}
