// Command hydra-bench regenerates every figure of the paper's evaluation
// (Section 7) plus the ablation studies, printing each as a text table.
//
//	go run ./cmd/hydra-bench                  # full suite
//	go run ./cmd/hydra-bench -only fig9,fig15 # a subset
//	go run ./cmd/hydra-bench -scale 0.5       # smaller worlds, faster
//	go run ./cmd/hydra-bench -workers 1       # pin the pool (sequential)
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"hydra/internal/experiments"
)

type driver struct {
	key string
	run func(experiments.Config) (*experiments.Result, error)
}

func main() {
	var (
		scale   = flag.Float64("scale", 1, "world-size multiplier")
		seed    = flag.Int64("seed", 7, "suite seed")
		workers = flag.Int("workers", 0, "worker-pool size for sweep points and pairwise hot paths; 0 = all cores, 1 = sequential — figures are identical at any setting")
		only    = flag.String("only", "", "comma-separated subset: fig2a,fig8,fig9,fig10,fig11,fig12,fig13,fig14,fig15,ablations")
	)
	flag.Parse()
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}

	drivers := []driver{
		{"fig2a", func(c experiments.Config) (*experiments.Result, error) {
			_, res, err := experiments.Figure2a(c)
			return res, err
		}},
		{"fig8", experiments.Figure8},
		{"fig9", experiments.Figure9},
		{"fig10", experiments.Figure10},
		{"fig11", experiments.Figure11},
		{"fig12", experiments.Figure12},
		{"fig13", experiments.Figure13},
		{"fig14", experiments.Figure14},
		{"fig15", experiments.Figure15},
		{"ablations", runAblations},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}

	start := time.Now()
	for _, d := range drivers {
		if len(want) > 0 && !want[d.key] {
			continue
		}
		t0 := time.Now()
		res, err := d.run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", d.key, err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%s finished in %.1fs)\n\n", d.key, time.Since(t0).Seconds())
	}
	fmt.Printf("suite complete in %.1fs\n", time.Since(start).Seconds())
}

// runAblations runs the four design-choice ablations and merges them into
// one printable result block.
func runAblations(cfg experiments.Config) (*experiments.Result, error) {
	merged := &experiments.Result{Figure: "Ablations", Title: "design-choice ablations", XLabel: "labeled-frac"}
	for _, ab := range []func(experiments.Config) (*experiments.Result, error){
		experiments.AblationStructure,
		experiments.AblationPooling,
		experiments.AblationMultiScale,
		experiments.AblationTopicKernel,
	} {
		res, err := ab(cfg)
		if err != nil {
			return nil, err
		}
		for _, s := range res.Series {
			for i := range s.X {
				merged.AddPoint(res.Figure+"/"+s.Name, s.X[i], s.Precision[i], s.Recall[i], s.TimeSec[i])
			}
		}
		for _, n := range res.Notes {
			merged.Note("%s: %s", res.Figure, n)
		}
	}
	return merged, nil
}
