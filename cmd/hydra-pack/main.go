// Command hydra-pack converts an existing v1 model artifact plus the
// world file it was trained on into a self-contained v3 serving bundle,
// offline. Use it to migrate already-trained deployments to world-free
// serving without retraining:
//
//	go run ./cmd/hydra-pack  -model model.json -world world.json -o bundle.json
//	go run ./cmd/hydra-serve -bundle bundle.json
//
// Packing rebuilds the feature system from the artifact's recipe once
// (fingerprint-checked against the world, exactly like hydra-serve's
// world-backed startup), snapshots every account view, top-friends slice
// and candidate index the serving engine queries, and writes them as one
// versioned bundle. After that the world file — raw posts, trajectories
// and ground truth included — no longer ships anywhere.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hydra/internal/pipeline"
)

func main() {
	var (
		model   = flag.String("model", "", "model artifact JSON (from hydra-link -save-model)")
		world   = flag.String("world", "", "world JSON the model was trained on (from hydra-gen)")
		out     = flag.String("o", "", "output bundle path")
		workers = flag.Int("workers", 0, "worker-pool size for the index rebuild; 0 = all cores (identical bundle at any setting)")
	)
	flag.Parse()
	if *model == "" || *world == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: hydra-pack -model model.json -world world.json -o bundle.json")
		os.Exit(2)
	}

	art, err := pipeline.LoadArtifact(*model)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := pipeline.LoadWorldFile(*world)
	if err != nil {
		log.Fatal(err)
	}
	b, err := pipeline.BundleFromArtifact(art, ds, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipeline.SaveBundle(*out, b); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	views := 0
	for _, v := range b.Views {
		views += len(v)
	}
	fmt.Fprintf(os.Stderr, "packed %s: %d platforms, %d views, %d indexed pairs, top-%d friends, %d bytes — serve it with hydra-serve -bundle\n",
		*out, len(b.Views), views, len(b.Indexes), b.FriendsK, info.Size())
}
