// Command hydra-pack converts an existing v1 model artifact plus the
// world file it was trained on into a self-contained v3 serving bundle,
// offline. Use it to migrate already-trained deployments to world-free
// serving without retraining:
//
//	go run ./cmd/hydra-pack  -model model.json -world world.json -o bundle.json
//	go run ./cmd/hydra-serve -bundle bundle.json
//
// Packing rebuilds the feature system from the artifact's recipe once
// (fingerprint-checked against the world, exactly like hydra-serve's
// world-backed startup), snapshots every account view, top-friends slice
// and candidate index the serving engine queries, and writes them as one
// versioned bundle. After that the world file — raw posts, trajectories
// and ground truth included — no longer ships anywhere.
//
// With -shards N the bundle is split into N self-contained sub-bundles
// for a scatter-gather deployment: each holds the model and configs in
// full plus the views, friends and index rows of the B-side accounts a
// seeded consistent hash assigns to it (and the views of their friends,
// which Eqn-18 imputation needs). Shard k lands next to -o as
// name.shard0.ext … name.shardN-1.ext; serve each with hydra-serve and
// front them with hydra-router. Re-shard an already-packed bundle with
// -bundle instead of -model/-world:
//
//	go run ./cmd/hydra-pack -bundle bundle.bin -shards 4 -generation 2 -o bundle.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"hydra/internal/blocking"
	"hydra/internal/pipeline"
)

func main() {
	var (
		model       = flag.String("model", "", "model artifact JSON (from hydra-link -save-model)")
		world       = flag.String("world", "", "world JSON the model was trained on (from hydra-gen)")
		inBundle    = flag.String("bundle", "", "existing bundle to (re-)shard instead of packing from -model/-world")
		out         = flag.String("o", "", "output bundle path (with -shards, the base name for name.shardK.ext files)")
		workers     = flag.Int("workers", 0, "worker-pool size for the index rebuild; 0 = all cores (identical bundle at any setting)")
		shards      = flag.Int("shards", 1, "split the bundle into this many self-contained shards (1 = no split)")
		seed        = flag.Uint64("hash-seed", 0, "seed of the consistent hash that assigns B-side accounts to shards")
		generation  = flag.Uint64("generation", 1, "bundle generation stamped on each shard; hot swap requires strictly newer")
		imputeTable = flag.String("impute-table", "on", "pack-time Eqn-18 impute table: on|off; off strips the table so serving imputes through the live friend walk (bit-identical answers, smaller bundle)")
	)
	flag.Parse()
	if *imputeTable != "on" && *imputeTable != "off" {
		fmt.Fprintf(os.Stderr, "hydra-pack: -impute-table must be on or off, got %q\n", *imputeTable)
		os.Exit(2)
	}
	if *out == "" || (*inBundle == "" && (*model == "" || *world == "")) {
		fmt.Fprintln(os.Stderr, "usage: hydra-pack -model model.json -world world.json -o bundle.json [-shards N]")
		fmt.Fprintln(os.Stderr, "       hydra-pack -bundle bundle.bin -shards N [-generation G] -o bundle.bin")
		os.Exit(2)
	}
	if *inBundle != "" && (*model != "" || *world != "") {
		fmt.Fprintln(os.Stderr, "hydra-pack: -bundle re-shards an existing bundle; do not combine it with -model/-world")
		os.Exit(2)
	}

	var (
		b   *pipeline.Bundle
		err error
	)
	if *inBundle != "" {
		if b, err = pipeline.LoadBundle(*inBundle); err != nil {
			log.Fatal(err)
		}
	} else {
		art, err := pipeline.LoadArtifact(*model)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := pipeline.LoadWorldFile(*world)
		if err != nil {
			log.Fatal(err)
		}
		if b, err = pipeline.BundleFromArtifact(art, ds, *workers); err != nil {
			log.Fatal(err)
		}
	}

	if *imputeTable == "off" {
		b.ImputeTable = nil
	}

	if *shards <= 1 {
		if err := pipeline.SaveBundle(*out, b); err != nil {
			log.Fatal(err)
		}
		report(*out, b)
		return
	}

	subs, err := pipeline.SplitBundle(b, *shards, *seed, *generation)
	if err != nil {
		log.Fatal(err)
	}
	for _, sb := range subs {
		path := shardPath(*out, sb.Shard.Index)
		if err := pipeline.SaveBundle(path, sb); err != nil {
			log.Fatal(err)
		}
		report(path, sb)
	}
	fmt.Fprintf(os.Stderr, "split into %d shards (hash seed %d, generation %d) — serve each with hydra-serve and front them with hydra-router\n",
		*shards, *seed, *generation)
}

// shardPath derives shard k's file name: bundle.bin -> bundle.shard0.bin.
func shardPath(out string, k int) string {
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.shard%d%s", strings.TrimSuffix(out, ext), k, ext)
}

func report(path string, b *pipeline.Bundle) {
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	views := 0
	for _, v := range b.Views {
		views += len(v)
	}
	suffix := "serve it with hydra-serve -bundle"
	if b.Shard != nil {
		suffix = fmt.Sprintf("shard %d/%d", b.Shard.Index, b.Shard.Count)
	}
	tbl := ""
	if b.ImputeTable != nil {
		tbl = fmt.Sprintf(", %d impute-table entries", b.ImputeTable.NumEntries())
	}
	fmt.Fprintf(os.Stderr, "packed %s: %d platforms, %d views, %d indexed pairs, top-%d friends%s, %d bytes — %s\n",
		path, len(b.Views), views, len(b.Indexes), b.FriendsK, tbl, info.Size(), suffix)
	// The candidate-set fan-out decides serving latency: every top-k
	// query scores its whole shard, so a ballooned tail is visible here
	// before it is visible in p99s.
	for _, ix := range b.Indexes {
		sizes := make([]int, len(ix.ByA))
		for i, row := range ix.ByA {
			sizes[i] = len(row)
		}
		f := blocking.FanoutOf(sizes)
		fmt.Fprintf(os.Stderr, "  blocking fan-out %s → %s: %d rows, %d candidates, mean %.1f / p99 %d / max %d per account\n",
			ix.PA, ix.PB, f.Rows, f.Total, f.Mean, f.P99, f.Max)
	}
}
