// Command hydra-serve is the query front-end of the train/serve split: it
// answers score / link / top-k linkage queries without retraining — over
// stdin by default, or over HTTP with -http. Two deployment modes:
//
//   - Self-contained bundle (preferred): -bundle loads a v3 serving
//     bundle written by hydra-link -save-bundle or hydra-pack. The bundle
//     carries precomputed account views, friend slices and candidate
//     indexes, so startup is a decode — no world file, no feature
//     rebuild, and the raw behavior data never ships to the server.
//     With -mmap the bundle file is memory-mapped instead of decoded:
//     startup reads only the header, sections materialize on first
//     touch, and resident memory tracks the working set — bundles
//     larger than RAM serve fine. Answers are bit-identical either way.
//   - Artifact + world: -model loads a v1 artifact plus the -world file
//     the model was trained on, rebuilding the feature pipeline and the
//     per-A-side candidate indexes from the raw dataset at startup.
//
// Both modes answer every query bit-identically:
//
//	go run ./cmd/hydra-gen   -persons 120 -dataset english -o world.json
//	go run ./cmd/hydra-link  -in world.json -save-bundle bundle.json
//	echo "topk twitter 4 facebook 3" | go run ./cmd/hydra-serve -bundle bundle.json
//	go run ./cmd/hydra-serve -bundle bundle.json -http :8080
//
// The HTTP server is built for long-lived serving:
//
//   - SIGHUP re-reads the -bundle file and hot-swaps it in atomically.
//     In-flight queries finish on the generation they started on; the
//     swap is refused if the new bundle's generation is not strictly
//     newer or its shard topology differs (see serve.Swappable).
//   - SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
//     requests get -drain-timeout to finish, then the process exits.
//   - /metrics exposes per-endpoint Prometheus counters and latency
//     histograms; -log-requests writes one JSON line per request.
//   - /healthz reports the bundle generation and shard descriptor, which
//     hydra-router uses to verify a coherent serving set.
//
// Query batches fan out over the -workers pool. The server runs with
// read/write timeouts and a capped request body size, so stalled or
// abusive clients cannot pin connections or buffer unbounded input.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hydra/internal/obs"
	"hydra/internal/pipeline"
	"hydra/internal/serve"
)

func main() {
	var (
		bundle       = flag.String("bundle", "", "self-contained serving bundle (from hydra-link -save-bundle or hydra-pack); replaces -model and -world")
		mmapBundle   = flag.Bool("mmap", false, "memory-map the -bundle file instead of decoding it up front: O(header) startup, sections materialize on first touch (falls back to a heap copy where mmap is unavailable; answers are bit-identical)")
		model        = flag.String("model", "", "model artifact JSON (from hydra-link -save-model); needs -world")
		world        = flag.String("world", "", "world JSON the model was trained on (from hydra-gen)")
		workers      = flag.Int("workers", 0, "worker-pool size for query batches and index building; 0 = all cores")
		httpAddr     = flag.String("http", "", "serve HTTP on this address (e.g. :8080) instead of the stdin REPL")
		logRequests  = flag.Bool("log-requests", false, "write one JSON log line per HTTP request to stderr")
		prescreen    = flag.String("prescreen", "on", "two-tier approximate prescreen for top-k queries: on|off; off forces exact-only scoring (answers are bit-identical either way, off just skips the pruning)")
		imputeTable  = flag.String("impute-table", "on", "pack-time Eqn-18 impute table: on|off; off routes missing-dimension candidates through the live friend walk (answers are bit-identical either way, off just skips the lookup)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight requests get to finish on SIGINT/SIGTERM")
		maxInflight  = flag.Int("max-inflight", 0, "bounded admission: max concurrently served requests before shedding with 429 + Retry-After (0 = unbounded; /healthz and /metrics always pass)")
		prewarmN     = flag.Int("prewarm", 1024, "pre-warm an incoming engine before a SIGHUP hot swap publishes it: top-k per A-side account populating the pair cache and prescreen fold memo, capped at this many accounts per pair (-1 = all, 0 = off)")
	)
	flag.Parse()
	if *prescreen != "on" && *prescreen != "off" {
		fmt.Fprintf(os.Stderr, "hydra-serve: -prescreen must be on or off, got %q\n", *prescreen)
		os.Exit(2)
	}
	if *imputeTable != "on" && *imputeTable != "off" {
		fmt.Fprintf(os.Stderr, "hydra-serve: -impute-table must be on or off, got %q\n", *imputeTable)
		os.Exit(2)
	}

	var (
		eng *serve.Engine
		err error
	)
	switch {
	case *bundle != "":
		if *model != "" || *world != "" {
			fmt.Fprintln(os.Stderr, "hydra-serve: -bundle is self-contained; do not combine it with -model/-world")
			os.Exit(2)
		}
		eng, err = loadBundleEngine(*bundle, *workers, *mmapBundle)
		if err != nil {
			log.Fatal(err)
		}
	case *model != "" && *world != "":
		if *mmapBundle {
			fmt.Fprintln(os.Stderr, "hydra-serve: -mmap needs -bundle (the artifact+world path rebuilds features in RAM)")
			os.Exit(2)
		}
		var art *pipeline.Artifact
		if art, err = pipeline.LoadArtifact(*model); err != nil {
			log.Fatal(err)
		}
		ds, err := pipeline.LoadWorldFile(*world)
		if err != nil {
			log.Fatal(err)
		}
		if eng, err = serve.NewEngine(art, ds, *workers); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "model restored: %s kernel, %d candidate vectors; indexes for %d platform pairs\n",
			art.Model.KernelKind, len(art.Model.Xs), len(eng.Pairs()))
	default:
		fmt.Fprintln(os.Stderr, "usage: hydra-serve -bundle bundle.json [-http :8080]")
		fmt.Fprintln(os.Stderr, "       hydra-serve -model model.json -world world.json [-http :8080]")
		os.Exit(2)
	}

	if *prescreen == "off" {
		eng.SetPrescreenEnabled(false)
	}
	if *imputeTable == "off" {
		eng.SetImputeTableEnabled(false)
	}

	if *httpAddr == "" {
		if err := eng.REPL(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	metrics := obs.NewMetrics()
	eng.SetPrescreenObserver(metrics)
	holder := serve.NewSwappable(eng)
	// Pull-style: each /metrics scrape snapshots the *current* engine's
	// impute-layer counters, so a hot swap is reflected automatically.
	metrics.SetImputeSource(func() obs.ImputeStats {
		cur, _ := holder.Current()
		h := cur.ImputeHealth()
		return obs.ImputeStats{
			Enabled:         h.Enabled,
			TableEntries:    h.TableEntries,
			TableHits:       h.TableHits,
			TableMisses:     h.TableMisses,
			PairCacheSize:   h.PairCacheSize,
			PairCacheHits:   h.PairCacheHits,
			PairCacheMisses: h.PairCacheMisses,
		}
	})
	// Mapped-bundle residency and blocking fan-out ride the same
	// pull-style pattern; both are free to snapshot (atomic loads and
	// length-table sums, no section materialization).
	metrics.SetMappedSource(func() (obs.MappedStats, bool) {
		cur, _ := holder.Current()
		s := cur.MappedStats()
		if s == nil {
			return obs.MappedStats{}, false
		}
		return obs.MappedStats{
			Mapped:          s.Mapped,
			Bytes:           s.Bytes,
			AliasedVecs:     s.AliasedVecs,
			CopiedVecs:      s.CopiedVecs,
			ResidentViews:   s.ResidentViews,
			TotalViews:      s.TotalViews,
			ResidentFriends: s.ResidentFriends,
			TotalFriends:    s.TotalFriends,
			ResidentRows:    s.ResidentRows,
			TotalRows:       s.TotalRows,
		}, true
	})
	metrics.SetFanoutSource(func() []obs.PairFanout {
		cur, _ := holder.Current()
		fans := cur.Fanout()
		out := make([]obs.PairFanout, 0, len(fans))
		for pp, f := range fans {
			out = append(out, obs.PairFanout{
				PA: string(pp[0]), PB: string(pp[1]),
				Rows: f.Rows, Total: f.Total, Mean: f.Mean, P99: f.P99, Max: f.Max,
			})
		}
		return out
	})
	mux := http.NewServeMux()
	mux.Handle("/", holder.Handler())
	mux.Handle("/metrics", metrics.Handler())
	var logs io.Writer
	if *logRequests {
		logs = os.Stderr
	}
	// Innermost to outermost: deadline-budget enforcement (504 on spent
	// budgets, feeds the remaining-budget histogram), bounded admission
	// (429 + Retry-After past -max-inflight), then request metrics/logs
	// so shed and expired requests are still counted and logged.
	admission := obs.NewAdmission(*maxInflight)
	metrics.SetAdmission(admission)
	handler := obs.Middleware(admission.Middleware(serve.DeadlineMiddleware(mux, metrics)), metrics, logs)

	fmt.Fprintf(os.Stderr, "serving HTTP on %s (/healthz /score /link /topk /metrics)\n", *httpAddr)
	srv := &http.Server{
		Addr:              *httpAddr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Batches fan out over the pool; a minute covers the largest
		// legitimate batch on a loaded box with headroom.
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	// SIGHUP hot-swaps the bundle; SIGINT/SIGTERM drain and exit.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	for {
		select {
		case err := <-errCh:
			if err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
			return
		case sig := <-sigs:
			switch sig {
			case syscall.SIGHUP:
				if *bundle == "" {
					fmt.Fprintln(os.Stderr, "SIGHUP ignored: hot swap needs -bundle (world-backed engines rebuild on restart)")
					continue
				}
				next, err := loadBundleEngine(*bundle, *workers, *mmapBundle)
				if err != nil {
					fmt.Fprintf(os.Stderr, "swap refused: %v — keeping current generation\n", err)
					continue
				}
				if *prescreen == "off" {
					next.SetPrescreenEnabled(false)
				}
				if *imputeTable == "off" {
					next.SetImputeTableEnabled(false)
				}
				next.SetPrescreenObserver(metrics)
				// Pre-warm before publishing: the old generation keeps
				// serving while the new one's pair cache and prescreen
				// fold memo fill, so the first post-swap queries don't
				// pay the cold-cache tail.
				if *prewarmN != 0 {
					warmStart := time.Now()
					if err := next.Prewarm(*prewarmN); err != nil {
						fmt.Fprintf(os.Stderr, "swap refused: prewarm: %v — keeping current generation\n", err)
						next.Close()
						continue
					}
					fmt.Fprintf(os.Stderr, "prewarmed incoming generation in %s\n", time.Since(warmStart).Round(time.Millisecond))
				}
				old, err := holder.Swap(next)
				if err != nil {
					fmt.Fprintf(os.Stderr, "swap refused: %v — keeping current generation\n", err)
					next.Close() // release the rejected engine's mapping
					continue
				}
				// The old mapping unmaps only after its last pinned
				// request drains; a no-op for heap-decoded engines.
				old.Retire()
				_, gen := holder.Current()
				fmt.Fprintf(os.Stderr, "swapped in generation %d from %s; in-flight queries finish on the old generation\n", gen, *bundle)
			default:
				fmt.Fprintf(os.Stderr, "%s: draining (up to %s) …\n", sig, *drainTimeout)
				ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
				err := srv.Shutdown(ctx)
				cancel()
				if err != nil {
					log.Fatalf("drain incomplete after %s: %v", *drainTimeout, err)
				}
				cur, _ := holder.Current()
				if err := cur.Close(); err != nil {
					log.Fatalf("closing bundle mapping: %v", err)
				}
				fmt.Fprintln(os.Stderr, "drained; bye")
				return
			}
		}
	}
}

// loadBundleEngine reads a bundle file and builds its engine — startup
// and every SIGHUP swap go through the same path. With mapped set the
// file is memory-mapped and sections stay lazy; otherwise the whole
// bundle is decoded onto the heap.
func loadBundleEngine(path string, workers int, mapped bool) (*serve.Engine, error) {
	if mapped {
		mb, err := pipeline.OpenBundleMapped(path, pipeline.MapOptions{})
		if err != nil {
			return nil, err
		}
		eng, err := serve.NewEngineFromMapped(mb, workers)
		if err != nil {
			mb.Close()
			return nil, err
		}
		shard := ""
		if d := mb.Shard(); d != nil {
			shard = fmt.Sprintf(", shard %d/%d gen %d", d.Index, d.Count, d.Generation)
		}
		mode := "mapped"
		if !mb.Mapped() {
			mode = "heap copy (mmap unavailable)"
		}
		mp := mb.ModelParts()
		fmt.Fprintf(os.Stderr, "bundle %s (%d bytes): %s kernel, %d candidate vectors, %d platforms; indexes for %d platform pairs%s\n",
			mode, mb.Stats().Bytes, mp.KernelKind, len(mp.Xs), len(mb.Platforms()), len(eng.Pairs()), shard)
		return eng, nil
	}
	b, err := pipeline.LoadBundle(path)
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewEngineFromBundle(b, workers)
	if err != nil {
		return nil, err
	}
	shard := ""
	if b.Shard != nil {
		shard = fmt.Sprintf(", shard %d/%d gen %d", b.Shard.Index, b.Shard.Count, b.Shard.Generation)
	}
	fmt.Fprintf(os.Stderr, "bundle restored: %s kernel, %d candidate vectors, %d platforms; indexes for %d platform pairs%s\n",
		b.Model.KernelKind, len(b.Model.Xs), len(b.Views), len(eng.Pairs()), shard)
	return eng, nil
}
