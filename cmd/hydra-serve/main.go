// Command hydra-serve is the query front-end of the train/serve split: it
// answers score / link / top-k linkage queries without retraining — over
// stdin by default, or over HTTP with -http. Two deployment modes:
//
//   - Self-contained bundle (preferred): -bundle loads a v3 serving
//     bundle written by hydra-link -save-bundle or hydra-pack. The bundle
//     carries precomputed account views, friend slices and candidate
//     indexes, so startup is a decode — no world file, no feature
//     rebuild, and the raw behavior data never ships to the server.
//   - Artifact + world: -model loads a v1 artifact plus the -world file
//     the model was trained on, rebuilding the feature pipeline and the
//     per-A-side candidate indexes from the raw dataset at startup.
//
// Both modes answer every query bit-identically:
//
//	go run ./cmd/hydra-gen   -persons 120 -dataset english -o world.json
//	go run ./cmd/hydra-link  -in world.json -save-bundle bundle.json
//	echo "topk twitter 4 facebook 3" | go run ./cmd/hydra-serve -bundle bundle.json
//	go run ./cmd/hydra-serve -bundle bundle.json -http :8080
//
// Query batches fan out over the -workers pool. The HTTP server runs
// with read/write timeouts and a capped request body size, so stalled or
// abusive clients cannot pin connections or buffer unbounded input.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"hydra/internal/pipeline"
	"hydra/internal/serve"
)

func main() {
	var (
		bundle   = flag.String("bundle", "", "self-contained serving bundle JSON (from hydra-link -save-bundle or hydra-pack); replaces -model and -world")
		model    = flag.String("model", "", "model artifact JSON (from hydra-link -save-model); needs -world")
		world    = flag.String("world", "", "world JSON the model was trained on (from hydra-gen)")
		workers  = flag.Int("workers", 0, "worker-pool size for query batches and index building; 0 = all cores")
		httpAddr = flag.String("http", "", "serve HTTP on this address (e.g. :8080) instead of the stdin REPL")
	)
	flag.Parse()

	var (
		eng *serve.Engine
		err error
	)
	switch {
	case *bundle != "":
		if *model != "" || *world != "" {
			fmt.Fprintln(os.Stderr, "hydra-serve: -bundle is self-contained; do not combine it with -model/-world")
			os.Exit(2)
		}
		var b *pipeline.Bundle
		if b, err = pipeline.LoadBundle(*bundle); err != nil {
			log.Fatal(err)
		}
		if eng, err = serve.NewEngineFromBundle(b, *workers); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bundle restored: %s kernel, %d candidate vectors, %d platforms; indexes for %d platform pairs\n",
			b.Model.KernelKind, len(b.Model.Xs), len(b.Views), len(eng.Pairs()))
	case *model != "" && *world != "":
		var art *pipeline.Artifact
		if art, err = pipeline.LoadArtifact(*model); err != nil {
			log.Fatal(err)
		}
		ds, err := pipeline.LoadWorldFile(*world)
		if err != nil {
			log.Fatal(err)
		}
		if eng, err = serve.NewEngine(art, ds, *workers); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "model restored: %s kernel, %d candidate vectors; indexes for %d platform pairs\n",
			art.Model.KernelKind, len(art.Model.Xs), len(eng.Pairs()))
	default:
		fmt.Fprintln(os.Stderr, "usage: hydra-serve -bundle bundle.json [-http :8080]")
		fmt.Fprintln(os.Stderr, "       hydra-serve -model model.json -world world.json [-http :8080]")
		os.Exit(2)
	}

	if *httpAddr != "" {
		fmt.Fprintf(os.Stderr, "serving HTTP on %s (/healthz /score /link /topk)\n", *httpAddr)
		srv := &http.Server{
			Addr:              *httpAddr,
			Handler:           eng.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			// Batches fan out over the pool; a minute covers the largest
			// legitimate batch on a loaded box with headroom.
			WriteTimeout: 60 * time.Second,
			IdleTimeout:  2 * time.Minute,
		}
		log.Fatal(srv.ListenAndServe())
	}
	if err := eng.REPL(os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
