// Command hydra-serve is the query front-end of the train/serve split: it
// loads a model artifact persisted by hydra-link -save-model plus the
// world file the model was trained on, and answers score / link / top-k
// linkage queries without retraining — over stdin by default, or over
// HTTP with -http:
//
//	go run ./cmd/hydra-gen   -persons 120 -dataset english -o world.json
//	go run ./cmd/hydra-link  -in world.json -save-model model.json
//	echo "topk twitter 4 facebook 3" | go run ./cmd/hydra-serve -model model.json -world world.json
//	go run ./cmd/hydra-serve -model model.json -world world.json -http :8080
//
// Startup rebuilds the feature system from the artifact's recipe (bit-
// exact scores against the training process) and a per-A-side sharded
// candidate index per platform pair, so top-k queries score only an
// account's candidate shard, never the full B side. Query batches fan out
// over the -workers pool.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"hydra/internal/pipeline"
	"hydra/internal/serve"
)

func main() {
	var (
		model    = flag.String("model", "", "model artifact JSON (from hydra-link -save-model)")
		world    = flag.String("world", "", "world JSON the model was trained on (from hydra-gen)")
		workers  = flag.Int("workers", 0, "worker-pool size for query batches and index building; 0 = all cores")
		httpAddr = flag.String("http", "", "serve HTTP on this address (e.g. :8080) instead of the stdin REPL")
	)
	flag.Parse()
	if *model == "" || *world == "" {
		fmt.Fprintln(os.Stderr, "usage: hydra-serve -model model.json -world world.json [-http :8080]")
		os.Exit(2)
	}

	art, err := pipeline.LoadArtifact(*model)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := pipeline.LoadWorldFile(*world)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := serve.NewEngine(art, ds, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "model restored: %s kernel, %d candidate vectors; indexes for %d platform pairs\n",
		art.Model.KernelKind, len(art.Model.Xs), len(eng.Pairs()))

	if *httpAddr != "" {
		fmt.Fprintf(os.Stderr, "serving HTTP on %s (/healthz /score /link /topk)\n", *httpAddr)
		log.Fatal(http.ListenAndServe(*httpAddr, eng.Handler()))
	}
	if err := eng.REPL(os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
