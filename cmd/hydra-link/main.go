// Command hydra-link reads a synthetic world previously written by
// hydra-gen and runs the full linkage pipeline on it — the file-based
// workflow for experimenting with fixed datasets:
//
//	go run ./cmd/hydra-gen  -persons 120 -dataset english -o world.json
//	go run ./cmd/hydra-link -in world.json -pa twitter -pb facebook
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

func main() {
	var (
		in        = flag.String("in", "", "input world JSON (from hydra-gen)")
		paName    = flag.String("pa", "twitter", "first platform id")
		pbName    = flag.String("pb", "facebook", "second platform id")
		labelFrac = flag.Float64("label-frac", 0.3, "labeled fraction of true candidate pairs")
		seed      = flag.Int64("seed", 1, "model seed")
		workers   = flag.Int("workers", 0, "worker-pool size for the pairwise hot paths; 0 = all cores, 1 = sequential — results are identical at any setting")
		report    = flag.Bool("report", false, "print the feature-group weight report")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: hydra-link -in world.json [-pa twitter -pb facebook]")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := platform.Decode(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	pa, pb := platform.ID(*paName), platform.ID(*pbName)
	if _, err := ds.Platform(pa); err != nil {
		log.Fatal(err)
	}
	if _, err := ds.Platform(pb); err != nil {
		log.Fatal(err)
	}

	// The feature pipeline needs the genre/sentiment lexicons; they are
	// deterministic vocabulary constructions shared with the generator.
	lx := synth.BuildLexicons(8, 40)
	var people []int
	for person := range ds.PersonAccounts {
		people = append(people, person)
	}
	half := people[:len(people)/2]
	labeled := core.LabeledProfilePairs(ds, pa, pb, half)
	sys, err := core.NewSystem(ds, labeled, features.Lexicons{
		Genre: lx.Genre, Sentiment: lx.Sentiment,
	}, features.DefaultConfig(*seed))
	if err != nil {
		log.Fatal(err)
	}

	opts := core.LabelOpts{LabelFraction: *labelFrac, NegPerPos: 2, UsePreMatched: true, Seed: *seed}
	rules := blocking.DefaultRules()
	rules.Workers = *workers
	block, err := core.BuildBlock(sys, pa, pb, rules, opts)
	if err != nil {
		log.Fatal(err)
	}
	task := &core.Task{Blocks: []*core.Block{block}}
	fmt.Printf("world: %d persons; task: %d candidates, %d labeled\n",
		ds.NumPersons(), task.NumCandidates(), task.NumLabeled())

	hcfg := core.DefaultConfig(*seed)
	hcfg.Workers = *workers
	linker := &core.HydraLinker{Cfg: hcfg}
	if err := linker.Fit(sys, task); err != nil {
		log.Fatal(err)
	}
	conf, err := core.EvaluateLinkerWorkers(sys, linker, task.Blocks, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linkage result: %s\n", conf)

	if *report {
		gws, err := core.FeatureGroupReport(sys, task, core.HydraM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nfeature-group weight report:")
		fmt.Print(core.FormatGroupWeights(gws))
	}
}
