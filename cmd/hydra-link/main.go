// Command hydra-link reads a synthetic world previously written by
// hydra-gen and runs the staged linkage pipeline on it (Load → Systemize →
// Block → Fit → Evaluate) — the file-based workflow for experimenting with
// fixed datasets, and the training half of the train/serve split:
//
//	go run ./cmd/hydra-gen  -persons 120 -dataset english -o world.json
//	go run ./cmd/hydra-link -in world.json -pa twitter -pb facebook -save-model model.json
//	go run ./cmd/hydra-serve -model model.json -world world.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hydra/internal/pipeline"
)

func main() {
	var (
		in         = flag.String("in", "", "input world JSON (from hydra-gen)")
		paName     = flag.String("pa", "twitter", "first platform id")
		pbName     = flag.String("pb", "facebook", "second platform id")
		labelFrac  = flag.Float64("label-frac", 0.3, "labeled fraction of true candidate pairs")
		seed       = flag.Int64("seed", 1, "model seed")
		workers    = flag.Int("workers", 0, "worker-pool size for the pairwise hot paths; 0 = all cores, 1 = sequential — results are identical at any setting")
		report     = flag.Bool("report", false, "print the feature-group weight report")
		saveModel  = flag.String("save-model", "", "persist the trained model as an artifact at this path (serve it with hydra-serve -model, world file required)")
		saveBundle = flag.String("save-bundle", "", "pack the trained model plus precomputed serving state into a self-contained bundle at this path (serve it with hydra-serve -bundle, no world file)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: hydra-link -in world.json [-pa twitter -pb facebook] [-save-model model.json]")
		os.Exit(2)
	}
	err := pipeline.RunLink(pipeline.LinkOpts{
		WorldPath:  *in,
		PA:         *paName,
		PB:         *pbName,
		LabelFrac:  *labelFrac,
		Seed:       *seed,
		Workers:    *workers,
		Report:     *report,
		SaveModel:  *saveModel,
		SaveBundle: *saveBundle,
	}, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
}
