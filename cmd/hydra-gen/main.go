// Command hydra-gen generates a synthetic multi-platform social world and
// writes it as JSON — the stand-in for the paper's seven-platform crawl
// (see DESIGN.md §2).
//
//	go run ./cmd/hydra-gen -persons 200 -dataset all -o world.json
//
// Generation fans out over the -workers pool: every random draw comes
// from a per-person or per-platform seeded stream, so the emitted world
// is byte-identical at any worker count (pinned by the synth package's
// workers test).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"hydra/internal/platform"
	"hydra/internal/synth"
)

func main() {
	var (
		persons = flag.Int("persons", 100, "number of natural persons")
		dataset = flag.String("dataset", "english", "dataset: english, chinese or all")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output path (default stdout)")
		missing = flag.Float64("missing-scale", 1, "missingness multiplier (1 = Figure 2(a) regime)")
		workers = flag.Int("workers", 0, "worker-pool size for person/account generation; 0 = all cores — the world is byte-identical at any setting")
		stream  = flag.Bool("stream", false, "stream accounts to the output as they render instead of building the world in RAM first — byte-identical output; use for worlds larger than memory")
	)
	flag.Parse()

	var plats []platform.ID
	switch *dataset {
	case "english":
		plats = platform.EnglishPlatforms
	case "chinese":
		plats = platform.ChinesePlatforms
	case "all":
		plats = platform.AllPlatforms
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	cfg := synth.DefaultConfig(*persons, plats, *seed)
	cfg.MissingScale = *missing
	cfg.Workers = *workers

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *stream {
		bw := bufio.NewWriterSize(w, 1<<20)
		if err := synth.GenerateStream(cfg, bw); err != nil {
			log.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			log.Fatal(err)
		}
	} else {
		world, err := synth.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := platform.Encode(w, world.Dataset); err != nil {
			log.Fatal(err)
		}
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d persons × %d platforms to %s\n",
			*persons, len(plats), *out)
	}
}
