// Command hydra runs the end-to-end social identity linkage pipeline on a
// synthetic multi-platform world: generate → extract features → block →
// train → link → report. It is the quickest way to see the whole system
// work:
//
//	go run ./cmd/hydra -persons 80 -dataset english -label-frac 0.3
//
// The flow is the staged internal/pipeline (Systemize → Block → Fit →
// Evaluate) over a freshly generated world. The pairwise hot paths
// (blocking, feature assembly, kernel matrices, evaluation) run on all
// cores by default; -workers pins the pool size (-workers 1 is fully
// sequential) without changing any result.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

func main() {
	var (
		persons   = flag.Int("persons", 80, "number of natural persons in the world")
		dataset   = flag.String("dataset", "english", "dataset: english (Twitter+Facebook), chinese (5 platforms), all (7)")
		labelFrac = flag.Float64("label-frac", 0.3, "fraction of true candidate pairs given ground-truth labels")
		variant   = flag.String("variant", "m", "missing-data variant: m (friend imputation) or z (zero fill)")
		gammaL    = flag.Float64("gamma-l", 0, "supervised-loss weight γ_L (0 = default)")
		gammaM    = flag.Float64("gamma-m", -1, "structure-consistency weight γ_M (-1 = default)")
		p         = flag.Float64("p", 1, "utility exponent p")
		seed      = flag.Int64("seed", 1, "world and model seed")
		workers   = flag.Int("workers", 0, "worker-pool size for the pairwise hot paths (blocking, feature assembly, kernel, evaluation); 0 = all cores, 1 = sequential — results are identical at any setting")
		verbose   = flag.Bool("v", false, "print per-pair decisions for the first persons")
	)
	flag.Parse()

	plats, pairs, err := resolveDataset(*dataset)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generating %d-person world on %d platforms (seed %d)...\n", *persons, len(plats), *seed)
	world, err := synth.Generate(synth.DefaultConfig(*persons, plats, *seed))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training feature pipeline (attribute importance, LDA, lexicon models)...")
	// The labeled half is persons 0..persons/2-1 by construction (the
	// generator numbers persons densely), not a map-order sample.
	var people []int
	for i := 0; i < *persons/2; i++ {
		people = append(people, i)
	}
	sysState, err := pipeline.Systemize(world.Dataset, pipeline.SystemizeOpts{
		LabelPA:      plats[0],
		LabelPB:      plats[1],
		LabelPersons: people,
		Lexicons:     features.Lexicons{Genre: world.Lexicons.Genre, Sentiment: world.Lexicons.Sentiment},
		FeatCfg:      features.DefaultConfig(*seed),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("blocking candidate pairs and attaching labels...")
	rules := blocking.DefaultRules()
	rules.Workers = *workers
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: pairs,
		Rules: rules,
		Label: core.LabelOpts{LabelFraction: *labelFrac, NegPerPos: 2, UsePreMatched: true, Seed: *seed},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, pp := range pairs {
		st := blocked.Stats[i]
		fmt.Printf("  %s × %s: %d candidates (%d pre-matched at %.0f%% precision), %d/%d true pairs kept\n",
			pp[0], pp[1], st.NumCandidates, st.NumPreMatched, 100*st.PrePrecision,
			st.TruePairsKept, st.TruePairsTotal)
	}
	stats := blocked.Task.Stats()
	fmt.Printf("task: %d blocks, %d candidates, %d labeled (%d positive)\n",
		stats.Blocks, stats.Candidates, stats.Labeled, stats.Positives)

	cfg := core.DefaultConfig(*seed)
	if *gammaL > 0 {
		cfg.GammaL = *gammaL
	}
	if *gammaM >= 0 {
		cfg.GammaM = *gammaM
	}
	cfg.P = *p
	cfg.Workers = *workers
	if *variant == "z" {
		cfg.Variant = core.HydraZ
	}

	fmt.Printf("training %s (γ_L=%g, γ_M=%g, p=%g)...\n", cfg.Variant, cfg.GammaL, cfg.GammaM, cfg.P)
	fitted, err := pipeline.Fit(blocked, cfg)
	if err != nil {
		log.Fatal(err)
	}
	d := fitted.Linker.Model().Diag
	fmt.Printf("  n=%d candidates, N_l=%d labeled, SMO iters=%d, nnz(β)=%d, M density=%.2g\n",
		d.N, d.NL, d.SMOIters, d.NnzBeta, d.MDensity)
	fmt.Printf("  objectives: F_D=%.4g F_S=%.4g\n", d.FD, d.FS)

	evaled, err := pipeline.Evaluate(fitted, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlinkage result: %s\n", evaled.Conf)

	if *verbose {
		fmt.Println("\nsample decisions (first block, first 10 persons):")
		b := blocked.Task.Blocks[0]
		sys := sysState.Sys
		shown := 0
		for _, c := range b.Cands {
			if !sys.DS.SamePerson(b.PA, c.A, b.PB, c.B) {
				continue
			}
			score, err := fitted.Linker.PairScore(b.PA, c.A, b.PB, c.B)
			if err != nil {
				log.Fatal(err)
			}
			pa, _ := sys.DS.Platform(b.PA)
			pb, _ := sys.DS.Platform(b.PB)
			fmt.Printf("  %-20q × %-20q score=%+.3f linked=%v\n",
				pa.Account(c.A).Profile.Username, pb.Account(c.B).Profile.Username,
				score, score > 0)
			shown++
			if shown >= 10 {
				break
			}
		}
	}
	os.Exit(0)
}

// resolveDataset maps the flag value to platforms and linkage pairs.
func resolveDataset(name string) ([]platform.ID, [][2]platform.ID, error) {
	switch name {
	case "english":
		return platform.EnglishPlatforms, [][2]platform.ID{
			{platform.Twitter, platform.Facebook},
		}, nil
	case "chinese":
		return platform.ChinesePlatforms, [][2]platform.ID{
			{platform.SinaWeibo, platform.TencentWeibo},
			{platform.Renren, platform.Kaixin},
		}, nil
	case "all":
		return platform.AllPlatforms, [][2]platform.ID{
			{platform.SinaWeibo, platform.Twitter},
			{platform.Renren, platform.Facebook},
		}, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want english, chinese or all)", name)
	}
}
